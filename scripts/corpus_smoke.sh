#!/bin/sh
# Corpus smoke: a seeded 50-program generated mini-C corpus must run the
# full supervised pipeline (detect -> sched -> sim -> verify) with zero
# crashes, timeouts, and quarantines, and the summary must be
# byte-identical across job counts (the engine's determinism contract
# extended to the generated population).
# Usage: sh scripts/corpus_smoke.sh [SEED] [COUNT]   (default 7, 50)
set -eu

seed=${1:-7}
count=${2:-50}

dune build bin/asipfb_cli.exe

workdir=$(mktemp -d corpus_smoke.XXXXXX)
trap 'rm -rf "$workdir"' EXIT

run="dune exec bin/asipfb_cli.exe --"

# Supervised run: watchdog + retries on, verifier on.  The subcommand
# exits non-zero if any program crashed, timed out, or was quarantined,
# so `set -e` is the zero-quarantine assertion.
$run corpus --seed "$seed" --count "$count" -j 4 \
  --verify full --retries 2 --retry-backoff 0.01 --task-timeout 30 \
  --diag-json "$workdir/corpus_diag.json" \
  > "$workdir/j4.out"

grep -q " 0 crashed, 0 timeout(s), 0 quarantined" "$workdir/j4.out" || {
  echo "corpus smoke: summary reports failures" >&2
  cat "$workdir/j4.out" >&2
  exit 1
}

# Same spec at -j 1 must produce a byte-identical summary.
$run corpus --seed "$seed" --count "$count" -j 1 \
  --verify full --retries 2 --retry-backoff 0.01 --task-timeout 30 \
  > "$workdir/j1.out"

if ! cmp -s "$workdir/j4.out" "$workdir/j1.out"; then
  echo "corpus smoke: summary differs between -j 4 and -j 1" >&2
  diff "$workdir/j4.out" "$workdir/j1.out" | head -40 >&2
  exit 1
fi

echo "corpus smoke: seed $seed count $count — supervised run clean, summary byte-identical across -j 1/4"
