(* Differential tests for the unified execution core.

   Interp now executes through the pre-compiled core (Asipfb_exec);
   Ref_interp is the retained pre-refactor tree-walker.  These tests pin
   the refactor's contract: both are observationally identical — return
   value, final memory, profile, instruction count, and (under equal
   seeds) the fault-injection stream — on the whole benchmark suite at
   every opt level and on random programs.  Tsim rides the same core, so
   its cycle counts are checked against Interp's dynamic count on
   chain-free target programs. *)

module Lower = Asipfb_frontend.Lower
module Interp = Asipfb_sim.Interp
module Ref_interp = Asipfb_sim.Ref_interp
module Value = Asipfb_sim.Value
module Memory = Asipfb_sim.Memory
module Profile = Asipfb_sim.Profile
module Fault = Asipfb_sim.Fault
module Schedule = Asipfb_sched.Schedule
module Opt_level = Asipfb_sched.Opt_level
module Target = Asipfb_asip.Target
module Tsim = Asipfb_asip.Tsim
module Benchmark = Asipfb_bench_suite.Benchmark
module Registry = Asipfb_bench_suite.Registry
module Pipeline = Asipfb.Pipeline
module Diag = Asipfb_diag.Diag
module Code = Asipfb_exec.Code

(* Structural comparison (so identically-computed NaNs still agree). *)
let same a b = Stdlib.compare a b = 0

let profile_alist (o : Interp.outcome) =
  List.sort compare (Profile.to_alist o.profile)

let agree (a : Interp.outcome) (b : Interp.outcome) =
  same a.return_value b.return_value
  && a.instrs_executed = b.instrs_executed
  && profile_alist a = profile_alist b
  && Memory.regions a.memory = Memory.regions b.memory
  && List.for_all
       (fun r -> same (Memory.dump a.memory r) (Memory.dump b.memory r))
       (Memory.regions a.memory)

let check_agree what (a : Interp.outcome) (b : Interp.outcome) =
  Alcotest.(check bool)
    (what ^ ": return value agrees") true
    (same a.return_value b.return_value);
  Alcotest.(check int) (what ^ ": instrs executed") b.instrs_executed
    a.instrs_executed;
  Alcotest.(check (list (pair int int)))
    (what ^ ": profile alist") (profile_alist b) (profile_alist a);
  Alcotest.(check (list string))
    (what ^ ": region list") (Memory.regions b.memory)
    (Memory.regions a.memory);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (what ^ ": region " ^ r) true
        (same (Memory.dump a.memory r) (Memory.dump b.memory r)))
    (Memory.regions a.memory)

(* --- whole suite x every opt level, with and without faults ------------- *)

let heavy = { Fault.seed = 7; reg_corrupt_rate = 0.01; mem_fault_rate = 0.01;
              fuel_cap = None }

let test_suite_differential () =
  List.iter
    (fun (b : Benchmark.t) ->
      let p = Benchmark.compile b in
      let inputs = b.inputs () in
      List.iter
        (fun level ->
          let prog = (Schedule.optimize ~level p).prog in
          let what =
            Printf.sprintf "%s/%s" b.name (Opt_level.to_string level)
          in
          check_agree what (Interp.run ~inputs prog)
            (Ref_interp.run ~inputs prog);
          (* Equal seeds must give bit-identical fault streams: the core
             preserves the reference's PRNG draw order.  A corrupted index
             can legitimately crash the run (e.g. a load out of bounds) —
             then both interpreters must crash with the same message. *)
          let fa = Fault.create heavy and fb = Fault.create heavy in
          let outcome_of run faults =
            try Ok (run ~inputs ~faults prog)
            with Interp.Runtime_error m -> Error m
          in
          (match
             ( outcome_of (fun ~inputs ~faults p ->
                   Interp.run ~inputs ~faults p)
                 fa,
               outcome_of (fun ~inputs ~faults p ->
                   Ref_interp.run ~inputs ~faults p)
                 fb )
           with
          | Ok a, Ok b -> check_agree (what ^ "+faults") a b
          | Error a, Error b ->
              Alcotest.(check string)
                (what ^ "+faults: both crash identically") b a
          | Ok _, Error m ->
              Alcotest.fail
                (what ^ "+faults: only the reference crashed: " ^ m)
          | Error m, Ok _ ->
              Alcotest.fail (what ^ "+faults: only the core crashed: " ^ m));
          Alcotest.(check int)
            (what ^ "+faults: injections agree")
            (Fault.injected_total fb) (Fault.injected_total fa))
        Opt_level.all)
    Registry.all

(* --- random programs (QCheck) ------------------------------------------- *)

let prop_core_matches_reference =
  QCheck2.Test.make ~name:"core agrees with reference on random programs"
    ~count:40 Gen_minic.gen_program (fun src ->
      let p = Lower.compile src ~entry:"main" in
      List.for_all
        (fun level ->
          let prog = (Schedule.optimize ~level p).prog in
          agree (Interp.run prog) (Ref_interp.run prog))
        Opt_level.all)

let prop_traced_matches_plain =
  (* The instrumented core instantiations must not change semantics: a
     no-op trace hook sees exactly instrs_executed events and leaves the
     outcome identical to the plain fast path. *)
  QCheck2.Test.make ~name:"traced core agrees with plain core" ~count:20
    Gen_minic.gen_program (fun src ->
      let p = Lower.compile src ~entry:"main" in
      let events = ref 0 in
      let traced = Interp.run ~on_exec:(fun _ _ -> incr events) p in
      let plain = Interp.run p in
      agree traced plain && !events = traced.instrs_executed)

(* --- Tsim rides the same core ------------------------------------------- *)

let test_tsim_matches_interp () =
  List.iter
    (fun (b : Benchmark.t) ->
      let p = Benchmark.compile b in
      let inputs = b.inputs () in
      let o = Interp.run ~inputs p in
      let t = Tsim.run ~inputs (Target.of_prog p) in
      Alcotest.(check int)
        (b.name ^ ": chain-free cycles equal base dynamic count")
        o.instrs_executed t.cycles;
      Alcotest.(check int) (b.name ^ ": ops equal cycles") t.cycles
        t.ops_executed;
      Alcotest.(check int) (b.name ^ ": nothing chained") 0 t.chained_executed;
      Alcotest.(check bool) (b.name ^ ": return value agrees") true
        (same o.return_value t.return_value);
      List.iter
        (fun r ->
          Alcotest.(check bool) (b.name ^ ": region " ^ r) true
            (same (Memory.dump o.memory r) (Memory.dump t.memory r)))
        (Memory.regions o.memory))
    Registry.all

(* --- sorted region listing (deterministic reports) ----------------------- *)

let test_regions_sorted () =
  let src =
    "int zz[2]; int aa[2]; int mm[2]; void main() { aa[0] = 1; zz[0] = 2; \
     mm[0] = 3; }"
  in
  let o = Interp.run (Lower.compile src ~entry:"main") in
  Alcotest.(check (list string))
    "regions listed in sorted order, not hash order" [ "aa"; "mm"; "zz" ]
    (Memory.regions o.memory)

(* --- timeout classification through the suite runner --------------------- *)

let test_timeout_classification () =
  let faults = { Fault.none with fuel_cap = Some 100 } in
  let r =
    Pipeline.run_suite ~faults
      ~benchmarks:[ Registry.find "fir" ]
      ~on_error:`Isolate ()
  in
  (match r.failures with
  | [ f ] ->
      Alcotest.(check bool) "fuel cap classified as timeout" true
        (Pipeline.classify_failure f = `Timeout)
  | _ -> Alcotest.fail "fuel cap of 100 must isolate fir");
  let crash =
    { Pipeline.failed_benchmark = "x";
      diag = Diag.make ~stage:Diag.Simulation "boom" }
  in
  Alcotest.(check bool) "plain diagnostic classified as crash" true
    (Pipeline.classify_failure crash = `Crash)

(* --- pre-compiled form sanity -------------------------------------------- *)

let test_code_shape () =
  let p =
    Lower.compile
      "int out[1]; void main() { int i; int s = 0; for (i = 0; i < 3; i++) \
       { s = s + i; } out[0] = s; }"
      ~entry:"main"
  in
  let c = Code.of_prog p in
  Alcotest.(check bool) "version tag non-empty" true
    (String.length Code.version > 0);
  Alcotest.(check bool) "labels occupy no slots" true
    (Code.slot_count c
    < List.fold_left
        (fun acc (f : Asipfb_ir.Func.t) -> acc + List.length f.body)
        0 p.funcs);
  (* Executing the compiled form must count exactly the slots the
     profile says ran: dense counters and slot model are consistent. *)
  let o = Interp.run p in
  Alcotest.(check int) "profile total equals instrs executed"
    o.instrs_executed
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (profile_alist o))

let suite =
  [
    ( "exec",
      [
        Alcotest.test_case "suite differential vs reference" `Quick
          test_suite_differential;
        Alcotest.test_case "tsim matches interp on chain-free code" `Quick
          test_tsim_matches_interp;
        Alcotest.test_case "regions sorted" `Quick test_regions_sorted;
        Alcotest.test_case "timeout classification" `Quick
          test_timeout_classification;
        Alcotest.test_case "pre-compiled form sanity" `Quick test_code_shape;
        QCheck_alcotest.to_alcotest prop_core_matches_reference;
        QCheck_alcotest.to_alcotest prop_traced_matches_plain;
      ] );
  ]
