(* Benchmark-suite tests: every kernel compiles, validates, runs
   deterministically, and produces non-trivial output. *)

module Benchmark = Asipfb_bench_suite.Benchmark
module Registry = Asipfb_bench_suite.Registry
module Data = Asipfb_bench_suite.Data
module Value = Asipfb_sim.Value

let test_registry_complete () =
  Alcotest.(check int) "twelve benchmarks" 12 (List.length Registry.all);
  Alcotest.(check (list string)) "paper order"
    [ "fir"; "iir"; "pse"; "intfft"; "compress"; "flatten"; "smooth";
      "edge"; "sewha"; "dft"; "bspline"; "feowf" ]
    Registry.names;
  Alcotest.(check bool) "find works" true
    (Registry.find_opt "fir" <> None);
  Alcotest.(check bool) "unknown is None" true
    (Registry.find_opt "quake" = None);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Registry.find "nothere" with
  | exception Registry.Unknown_benchmark msg ->
      Alcotest.(check bool) "error names the benchmark" true
        (contains msg "\"nothere\"");
      Alcotest.(check bool) "error lists valid names" true (contains msg "fir")
  | _ -> Alcotest.fail "find must raise"

let test_all_compile_and_validate () =
  List.iter
    (fun (b : Benchmark.t) ->
      let p = Benchmark.compile b in
      Alcotest.(check (list string))
        (b.name ^ " validates")
        []
        (List.map
           (fun e -> Format.asprintf "%a" Asipfb_ir.Validate.pp_error e)
           (Asipfb_ir.Validate.check p)))
    Registry.all

let test_all_run () =
  List.iter
    (fun (b : Benchmark.t) ->
      let o = Benchmark.run b in
      Alcotest.(check bool)
        (b.name ^ " executes a meaningful amount of work")
        true
        (o.instrs_executed > 1000))
    Registry.all

let test_outputs_nontrivial () =
  List.iter
    (fun (b : Benchmark.t) ->
      let o = Benchmark.run b in
      let some_nonzero =
        List.exists
          (fun region ->
            Array.exists
              (fun v -> not (Value.equal v (Value.zero (Value.ty v))))
              (Asipfb_sim.Memory.dump o.memory region))
          b.output_regions
      in
      Alcotest.(check bool) (b.name ^ " output not all zero") true
        some_nonzero)
    Registry.all

let test_deterministic () =
  List.iter
    (fun (b : Benchmark.t) ->
      let o1 = Benchmark.run b and o2 = Benchmark.run b in
      Alcotest.(check int) (b.name ^ " same work") o1.instrs_executed
        o2.instrs_executed;
      List.iter
        (fun region ->
          let a = Asipfb_sim.Memory.dump o1.memory region in
          let c = Asipfb_sim.Memory.dump o2.memory region in
          Alcotest.(check bool) (b.name ^ "/" ^ region ^ " identical") true
            (Array.for_all2 Value.equal a c))
        b.output_regions)
    Registry.all

let test_metadata () =
  List.iter
    (fun (b : Benchmark.t) ->
      Alcotest.(check bool) (b.name ^ " described") true
        (String.length b.description > 5);
      Alcotest.(check bool) (b.name ^ " data described") true
        (String.length b.data_input > 5);
      Alcotest.(check bool) (b.name ^ " has sources") true
        (Benchmark.source_lines b >= 10))
    Registry.all

let test_data_generators () =
  let a = Data.float_signal ~seed:5 ~len:10 in
  let b = Data.float_signal ~seed:5 ~len:10 in
  Alcotest.(check bool) "float signal deterministic" true
    (Array.for_all2 Value.equal a b);
  Array.iter
    (fun v ->
      let x = Value.as_float v in
      Alcotest.(check bool) "in [-1,1)" true (x >= -1.0 && x < 1.0))
    a;
  let s = Data.int_stream ~seed:3 ~len:20 in
  Array.iter
    (fun v ->
      let x = Value.as_int v in
      Alcotest.(check bool) "int in [-128,128)" true (x >= -128 && x < 128))
    s;
  let img = Data.image_8bit ~seed:1 ~side:24 in
  Alcotest.(check int) "image size" 576 (Array.length img);
  Array.iter
    (fun v ->
      let x = Value.as_int v in
      Alcotest.(check bool) "pixel in [0,255]" true (x >= 0 && x <= 255))
    img;
  (* The image has spatial structure: the corners differ. *)
  Alcotest.(check bool) "gradient present" true
    (Value.as_int img.(575) > Value.as_int img.(0))

let test_fft_benchmarks_sane () =
  (* Parseval-flavoured sanity: pse's spectrum carries energy. *)
  let pse = Registry.find "pse" in
  let o = Benchmark.run pse in
  let psd = Asipfb_sim.Memory.dump o.memory "psd" in
  let energy =
    Array.fold_left (fun acc v -> acc +. Value.as_float v) 0.0 psd
  in
  Alcotest.(check bool) "spectral energy positive" true (energy > 0.1);
  (* intfft interpolates: output length doubles the frame and stays
     bounded. *)
  let intfft = Registry.find "intfft" in
  let oi = Benchmark.run intfft in
  let interp = Asipfb_sim.Memory.dump oi.memory "interp" in
  Alcotest.(check bool) "interpolation bounded" true
    (Array.for_all (fun v -> Float.abs (Value.as_float v) < 100.0) interp)

let test_image_benchmarks_sane () =
  let smooth = Registry.find "smooth" in
  let o = Benchmark.run smooth in
  let out = Asipfb_sim.Memory.dump o.memory "result" in
  Array.iter
    (fun v ->
      let x = Value.as_int v in
      Alcotest.(check bool) "smoothed pixel in range" true
        (x >= 0 && x <= 255))
    out;
  let edge = Registry.find "edge" in
  let oe = Benchmark.run edge in
  let eout = Asipfb_sim.Memory.dump oe.memory "result" in
  Array.iter
    (fun v ->
      let x = Value.as_int v in
      Alcotest.(check bool) "edge map binary" true (x = 0 || x = 255))
    eout;
  Alcotest.(check bool) "edges found" true
    (Array.exists (fun v -> Value.as_int v = 255) eout);
  let flatten = Registry.find "flatten" in
  let off = Benchmark.run flatten in
  let fout = Asipfb_sim.Memory.dump off.memory "result" in
  Array.iter
    (fun v ->
      let x = Value.as_int v in
      Alcotest.(check bool) "flattened pixel in range" true
        (x >= 0 && x <= 255))
    fout

let test_filter_benchmarks_sane () =
  (* A lowpass FIR of a bounded signal stays bounded. *)
  let fir = Registry.find "fir" in
  let o = Benchmark.run fir in
  let out = Asipfb_sim.Memory.dump o.memory "output" in
  Alcotest.(check bool) "fir bounded" true
    (Array.for_all (fun v -> Float.abs (Value.as_float v) < 10.0) out);
  (* Coefficients are a window-designed lowpass: the center tap is the
     largest. *)
  let coef = Asipfb_sim.Memory.dump o.memory "coef" in
  let center = Value.as_float coef.(17) in
  Alcotest.(check bool) "center tap dominates" true
    (Array.for_all (fun v -> Value.as_float v <= center +. 1e-9) coef);
  (* IIR of a bounded input remains stable. *)
  let iir = Registry.find "iir" in
  let oi = Benchmark.run iir in
  let iout = Asipfb_sim.Memory.dump oi.memory "output" in
  Alcotest.(check bool) "iir stable" true
    (Array.for_all (fun v -> Float.abs (Value.as_float v) < 50.0) iout)

let suite =
  [
    ( "bench_suite",
      [
        Alcotest.test_case "registry" `Quick test_registry_complete;
        Alcotest.test_case "compile and validate" `Quick
          test_all_compile_and_validate;
        Alcotest.test_case "all run" `Slow test_all_run;
        Alcotest.test_case "outputs non-trivial" `Slow test_outputs_nontrivial;
        Alcotest.test_case "deterministic" `Slow test_deterministic;
        Alcotest.test_case "metadata" `Quick test_metadata;
        Alcotest.test_case "data generators" `Quick test_data_generators;
        Alcotest.test_case "FFT benchmarks sane" `Slow test_fft_benchmarks_sane;
        Alcotest.test_case "image benchmarks sane" `Slow
          test_image_benchmarks_sane;
        Alcotest.test_case "filter benchmarks sane" `Quick
          test_filter_benchmarks_sane;
      ] );
  ]
