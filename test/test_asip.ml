(* ASIP design tests: cost model, selection under budget, speedup math,
   ISA rendering, and the timing model (flat byte-compatibility,
   estimate-vs-measurement agreement under both machine descriptions). *)

module Cost = Asipfb_asip.Cost
module Select = Asipfb_asip.Select
module Speedup = Asipfb_asip.Speedup
module Isa = Asipfb_asip.Isa
module Uarch = Asipfb_asip.Uarch
module Tsim = Asipfb_asip.Tsim
module Codegen = Asipfb_asip.Codegen
module Timing = Asipfb.Timing
module Registry = Asipfb_bench_suite.Registry
module Opt_level = Asipfb_sched.Opt_level

let test_cost_model () =
  Alcotest.(check bool) "multiplier bigger than adder" true
    (Cost.unit_area "multiply" > Cost.unit_area "add");
  Alcotest.(check bool) "float ops cost more" true
    (Cost.unit_area "fadd" > Cost.unit_area "add");
  Alcotest.(check (float 1e-9)) "chain area adds units plus links"
    (Cost.unit_area "multiply" +. Cost.unit_area "add" +. Cost.link_area)
    (Cost.chain_area [ "multiply"; "add" ]);
  Alcotest.(check (float 1e-9)) "single op has no link overhead"
    (Cost.unit_area "add")
    (Cost.chain_area [ "add" ]);
  Alcotest.(check (float 1e-9)) "delay is additive"
    (Cost.unit_delay "multiply" +. Cost.unit_delay "add")
    (Cost.chain_delay [ "multiply"; "add" ]);
  (match Cost.unit_area "quantum" with
  | exception Asipfb_diag.Diag.Diag_error d ->
      Alcotest.(check (option string)) "diag kind" (Some "unknown-chain-class")
        (List.assoc_opt "kind" d.context)
  | _ -> Alcotest.fail "unknown class must raise a structured diagnostic");
  (match Cost.unit_delay "quantum" with
  | exception Asipfb_diag.Diag.Diag_error d ->
      Alcotest.(check (option string)) "delay diag kind"
        (Some "unknown-chain-class")
        (List.assoc_opt "kind" d.context)
  | _ -> Alcotest.fail "unknown class must raise a structured diagnostic")

let test_feasibility () =
  Alcotest.(check bool) "MAC feasible" true
    (Cost.chain_feasible [ "multiply"; "add" ]);
  Alcotest.(check bool) "divide chains do not fit" false
    (Cost.chain_feasible [ "fdivide"; "fadd" ]);
  Alcotest.(check bool) "five adds too slow at tight clock" false
    (Cost.chain_feasible ~max_delay:1.0
       [ "add"; "add"; "add"; "add"; "add" ]);
  Alcotest.(check bool) "relaxed clock admits them" true
    (Cost.chain_feasible ~max_delay:2.0
       [ "add"; "add"; "add"; "add"; "add" ])

let analysis_of name =
  Asipfb.Pipeline.analyze (Asipfb_bench_suite.Registry.find name)

let test_selection_budget () =
  let a = analysis_of "sewha" in
  let sched = Asipfb.Pipeline.sched a Opt_level.O1 in
  List.iter
    (fun budget ->
      let config = { Select.default_config with area_budget = budget } in
      let choices = Select.choose config sched ~profile:a.profile in
      let area =
        Asipfb_util.Listx.sum_by (fun (c : Select.choice) -> c.area) choices
      in
      Alcotest.(check bool)
        (Printf.sprintf "area %.1f within budget %.1f" area budget)
        true (area <= budget))
    [ 5.0; 15.0; 40.0 ]

let test_selection_monotone_in_budget () =
  let a = analysis_of "edge" in
  let sched = Asipfb.Pipeline.sched a Opt_level.O1 in
  let saved budget =
    let config = { Select.default_config with area_budget = budget } in
    let choices = Select.choose config sched ~profile:a.profile in
    (Speedup.estimate choices ~profile:a.profile).saved_cycles
  in
  Alcotest.(check bool) "bigger budget saves at least as much" true
    (saved 40.0 >= saved 10.0)

let test_selection_respects_clock () =
  let a = analysis_of "dft" in
  let sched = Asipfb.Pipeline.sched a Opt_level.O1 in
  let config = { Select.default_config with max_delay = 1.2 } in
  let choices = Select.choose config sched ~profile:a.profile in
  List.iter
    (fun (c : Select.choice) ->
      Alcotest.(check bool) "delay within clock" true (c.delay <= 1.2))
    choices

let test_selection_no_duplicates () =
  let a = analysis_of "smooth" in
  let sched = Asipfb.Pipeline.sched a Opt_level.O1 in
  let choices =
    Select.choose Select.default_config sched ~profile:a.profile
  in
  let shapes = List.map (fun (c : Select.choice) -> c.classes) choices in
  Alcotest.(check int) "shapes unique" (List.length shapes)
    (List.length (Asipfb_util.Listx.dedup ( = ) shapes))

let test_speedup_math () =
  let profile = Asipfb_sim.Profile.of_alist [ (0, 600); (1, 400) ] in
  let choice =
    { Select.classes = [ "multiply"; "add" ]; freq = 0.0; area = 9.4;
      delay = 1.05; saved_cycles = 250 }
  in
  let est = Speedup.estimate [ choice ] ~profile in
  Alcotest.(check int) "baseline" 1000 est.baseline_cycles;
  Alcotest.(check int) "asip cycles" 750 est.asip_cycles;
  Alcotest.(check (float 1e-9)) "speedup" (1000.0 /. 750.0) est.speedup;
  let none = Speedup.estimate [] ~profile in
  Alcotest.(check (float 1e-9)) "no choices, no speedup" 1.0 none.speedup;
  (* Savings can never exceed the baseline. *)
  let over =
    { choice with saved_cycles = 5000 }
  in
  let capped = Speedup.estimate [ over ] ~profile in
  Alcotest.(check bool) "savings capped" true (capped.asip_cycles >= 0)

let test_isa_rendering () =
  Alcotest.(check string) "mnemonic" "CHN_MUL_ADD"
    (Isa.mnemonic [ "multiply"; "add" ]);
  Alcotest.(check string) "float mnemonic" "CHN_FMUL_FADD"
    (Isa.mnemonic [ "fmultiply"; "fadd" ]);
  let shape = Isa.operand_shape [ "multiply"; "add" ] in
  Alcotest.(check bool) "value chains have a destination" true
    (String.length shape > 3 && String.sub shape 0 3 = "rd,");
  let store_shape = Isa.operand_shape [ "fmul"; "fstore" ] in
  Alcotest.(check bool) "store chains have no destination" true
    (String.length store_shape < 3
    || String.sub store_shape 0 3 <> "rd,");
  let rendered =
    Isa.render
      [ { Select.classes = [ "multiply"; "add" ]; freq = 1.0; area = 9.4;
          delay = 1.05; saved_cycles = 10 } ]
  in
  Alcotest.(check bool) "render mentions mnemonic" true
    (let needle = "CHN_MUL_ADD" in
     let nh = String.length rendered and nn = String.length needle in
     let rec go i =
       if i + nn > nh then false
       else if String.sub rendered i nn = needle then true
       else go (i + 1)
     in
     go 0)

let test_end_to_end_speedup_sensible () =
  List.iter
    (fun name ->
      let a = analysis_of name in
      let sched = Asipfb.Pipeline.sched a Opt_level.O1 in
      let choices =
        Select.choose Select.default_config sched ~profile:a.profile
      in
      let est = Speedup.estimate choices ~profile:a.profile in
      Alcotest.(check bool)
        (Printf.sprintf "%s speedup in (1, 4]" name)
        true
        (est.speedup >= 1.0 && est.speedup <= 4.0))
    [ "fir"; "sewha"; "smooth" ]

(* --- timing model -------------------------------------------------------- *)

(* Reports are memoized per (benchmark, preset): the property below
   samples with repetition and a report costs an analysis plus a full
   target simulation. *)
let timing_memo : (string * string, Timing.report) Hashtbl.t =
  Hashtbl.create 8

let timing_report name preset =
  let key = (name, Uarch.name preset) in
  match Hashtbl.find_opt timing_memo key with
  | Some r -> r
  | None ->
      let r = Timing.run ~uarch:preset (Registry.find name) Opt_level.O1 in
      Hashtbl.add timing_memo key r;
      r

(* The counting estimate and the cycle-accurate measurement stay within
   the pinned tolerance on every benchmark, under both the flat and the
   pipelined machine description. *)
let prop_estimate_measurement_agree =
  QCheck.Test.make
    ~name:"estimated speedup agrees with measured (both presets)" ~count:10
    QCheck.(pair (int_range 0 (List.length Registry.all - 1)) bool)
    (fun (i, pipelined) ->
      let b = List.nth Registry.all i in
      let preset = if pipelined then Uarch.risc5 else Uarch.flat in
      let r = timing_report b.name preset in
      if Timing.agrees r then true
      else
        QCheck.Test.fail_reportf
          "%s under %s: estimated %.3fx vs measured %.3fx (tolerance %.0f%%)"
          b.name (Uarch.name preset) r.t_estimated_speedup
          r.t_measured_speedup
          (100.0 *. Speedup.agreement_tolerance))

(* The flat description is byte-compatible with the legacy model: the
   uarch-aware estimator and simulator reproduce the pre-uarch numbers
   field for field, pinned on fir's golden values. *)
let test_flat_matches_legacy () =
  let a = analysis_of "fir" in
  let sched = Asipfb.Pipeline.sched a Opt_level.O1 in
  let choices =
    Select.choose Select.default_config sched ~profile:a.profile
  in
  let legacy = Speedup.estimate choices ~profile:a.profile in
  let flat =
    Speedup.estimate ~uarch:Uarch.flat ~prog:a.prog choices
      ~profile:a.profile
  in
  Alcotest.(check int) "baseline cycles" legacy.baseline_cycles
    flat.baseline_cycles;
  Alcotest.(check int) "saved cycles" legacy.saved_cycles flat.saved_cycles;
  Alcotest.(check int) "asip cycles" legacy.asip_cycles flat.asip_cycles;
  Alcotest.(check (float 1e-12)) "speedup" legacy.speedup flat.speedup;
  Alcotest.(check (float 1e-12)) "total area" legacy.total_area
    flat.total_area;
  (* golden numbers: a change here is a cost-model change, not noise *)
  Alcotest.(check int) "fir flat baseline pinned" 40739
    flat.baseline_cycles;
  Alcotest.(check int) "fir flat asip pinned" 32882 flat.asip_cycles;
  let target = Codegen.generate_for_choices ~choices a.prog in
  let inputs = a.benchmark.inputs () in
  let legacy_out = Tsim.run target ~inputs in
  let flat_out = Tsim.run ~uarch:Uarch.flat target ~inputs in
  Alcotest.(check int) "measured cycles" legacy_out.cycles flat_out.cycles;
  Alcotest.(check int) "measured baseline" legacy_out.baseline_cycles
    flat_out.baseline_cycles;
  Alcotest.(check int) "ops executed" legacy_out.ops_executed
    flat_out.ops_executed

(* Under the pipelined preset every *selected* chain closes timing; the
   candidates that do not are rejected with a structured diagnostic. *)
let test_pipelined_chains_fit_clock () =
  let r = timing_report "fir" Uarch.risc5 in
  List.iter
    (fun (c : Timing.chain_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s slack %.2f non-negative" c.cr_mnemonic
           c.cr_slack)
        true
        (c.cr_slack >= -1e-9))
    r.t_chains;
  List.iter
    (fun (d : Asipfb_diag.Diag.t) ->
      Alcotest.(check (option string)) "rejection kind"
        (Some "clock-violation")
        (List.assoc_opt "kind" d.context))
    r.t_rejected

let suite =
  [
    ( "asip",
      [
        Alcotest.test_case "cost model" `Quick test_cost_model;
        Alcotest.test_case "clock feasibility" `Quick test_feasibility;
        Alcotest.test_case "budget respected" `Quick test_selection_budget;
        Alcotest.test_case "monotone in budget" `Quick
          test_selection_monotone_in_budget;
        Alcotest.test_case "clock respected" `Quick
          test_selection_respects_clock;
        Alcotest.test_case "no duplicate shapes" `Quick
          test_selection_no_duplicates;
        Alcotest.test_case "speedup math" `Quick test_speedup_math;
        Alcotest.test_case "isa rendering" `Quick test_isa_rendering;
        Alcotest.test_case "suite speedups sensible" `Slow
          test_end_to_end_speedup_sensible;
        Alcotest.test_case "flat matches legacy model" `Quick
          test_flat_matches_legacy;
        Alcotest.test_case "pipelined chains fit clock" `Quick
          test_pipelined_chains_fit_clock;
        QCheck_alcotest.to_alcotest prop_estimate_measurement_agree;
      ] );
  ]
