(* Lowering tests: compile small programs end to end, validate the IR, and
   check both structural properties and simulated semantics. *)

module Lower = Asipfb_frontend.Lower
module Instr = Asipfb_ir.Instr
module Types = Asipfb_ir.Types
module Prog = Asipfb_ir.Prog
module Func = Asipfb_ir.Func
module Interp = Asipfb_sim.Interp
module Value = Asipfb_sim.Value

let compile src = Lower.compile src ~entry:"main"

let run_main ?inputs src =
  Interp.run (compile src) ?inputs

let result_int src region idx =
  let o = run_main src in
  Value.as_int (Asipfb_sim.Memory.load o.memory region idx)

let result_float src region idx =
  let o = run_main src in
  Value.as_float (Asipfb_sim.Memory.load o.memory region idx)

let check_int msg expected src =
  Alcotest.(check int) msg expected (result_int src "out" 0)

let test_arithmetic () =
  check_int "precedence" 7 "int out[1]; void main() { out[0] = 1 + 2 * 3; }";
  check_int "division truncates" 2 "int out[1]; void main() { out[0] = 7 / 3; }";
  check_int "negative division" (-2)
    "int out[1]; void main() { out[0] = -7 / 3; }";
  check_int "remainder" 1 "int out[1]; void main() { out[0] = 7 % 3; }";
  check_int "shifts" 40 "int out[1]; void main() { out[0] = (5 << 4) >> 1; }";
  check_int "bitwise" 6 "int out[1]; void main() { out[0] = (4 | 2) & ~1; }";
  check_int "xor" 5 "int out[1]; void main() { out[0] = 6 ^ 3; }";
  check_int "unary minus" (-5) "int out[1]; void main() { out[0] = -5; }"

let test_float_arithmetic () =
  let y = result_float "float out[1]; void main() { out[0] = 1.5 * 2.0 + 0.25; }" "out" 0 in
  Alcotest.(check (float 1e-9)) "float expr" 3.25 y;
  let z = result_float "float out[1]; void main() { out[0] = (float)7 / 2.0; }" "out" 0 in
  Alcotest.(check (float 1e-9)) "cast then divide" 3.5 z;
  let w = result_int "int out[1]; void main() { out[0] = (int)3.9; }" "out" 0 in
  Alcotest.(check int) "float to int truncates" 3 w

let test_comparisons_and_logic () =
  check_int "true comparison" 1 "int out[1]; void main() { out[0] = 3 < 4; }";
  check_int "false comparison" 0 "int out[1]; void main() { out[0] = 4 <= 3; }";
  check_int "logical not" 1 "int out[1]; void main() { out[0] = !0; }";
  check_int "and short-circuits" 0
    "int a[1]; int out[1]; void main() { out[0] = 0 && a[5]; }";
  check_int "or short-circuits" 1
    "int a[1]; int out[1]; void main() { out[0] = 1 || a[5]; }";
  check_int "and both true" 1
    "int out[1]; void main() { out[0] = 2 && 3; }";
  check_int "ternary true" 10
    "int out[1]; void main() { out[0] = 1 < 2 ? 10 : 20; }";
  check_int "ternary false" 20
    "int out[1]; void main() { out[0] = 2 < 1 ? 10 : 20; }"

let test_control_flow () =
  check_int "if else" 2
    "int out[1]; void main() { if (1 > 2) out[0] = 1; else out[0] = 2; }";
  check_int "while loop sum" 45
    "int out[1]; void main() { int s = 0; int i = 0; while (i < 10) { s += i; i++; } out[0] = s; }";
  check_int "for loop product" 24
    "int out[1]; void main() { int p = 1; int i; for (i = 1; i <= 4; i++) p *= i; out[0] = p; }";
  check_int "nested loops" 100
    "int out[1]; void main() { int s = 0; int i; int j; for (i = 0; i < 10; i++) for (j = 0; j < 10; j++) s++; out[0] = s; }"

let test_functions () =
  check_int "call with args" 11
    "int out[1]; int add(int a, int b) { return a + b; } void main() { out[0] = add(5, 6); }";
  check_int "nested calls" 14
    "int out[1]; int dbl(int a) { return a * 2; } void main() { out[0] = dbl(dbl(3)) + 2; }";
  check_int "void call side effect" 9
    "int out[1]; void set(int v) { out[0] = v; } void main() { set(9); }";
  let y =
    result_float
      "float out[1]; float half(float x) { return x / 2.0; } void main() { out[0] = half(7.0); }"
      "out" 0
  in
  Alcotest.(check (float 1e-9)) "float return" 3.5 y

let test_arrays () =
  check_int "store then load" 42
    "int buf[4]; int out[1]; void main() { buf[2] = 42; out[0] = buf[2]; }";
  check_int "computed index" 5
    "int buf[8]; int out[1]; void main() { int i = 3; buf[i + 1] = 5; out[0] = buf[2 + 2]; }";
  check_int "array increment" 2
    "int h[4]; int out[1]; void main() { h[1]++; h[1]++; out[0] = h[1]; }"

let test_intrinsic_semantics () =
  let y = result_float "float out[1]; void main() { out[0] = sqrt(16.0); }" "out" 0 in
  Alcotest.(check (float 1e-9)) "sqrt" 4.0 y;
  let z = result_float "float out[1]; void main() { out[0] = fabs(-2.5); }" "out" 0 in
  Alcotest.(check (float 1e-9)) "fabs" 2.5 z;
  let s = result_float "float out[1]; void main() { out[0] = sin(0.0) + cos(0.0); }" "out" 0 in
  Alcotest.(check (float 1e-9)) "sin/cos" 1.0 s

let test_validation_of_output () =
  (* Every compiled program validates (compile runs check_exn), and the
     validator also accepts it when invoked directly. *)
  let p =
    compile
      "int a[4]; int f(int x) { return x * x; } void main() { a[0] = f(3); }"
  in
  Alcotest.(check (list Alcotest.string)) "no validation errors" []
    (List.map
       (fun e -> Format.asprintf "%a" Asipfb_ir.Validate.pp_error e)
       (Asipfb_ir.Validate.check p))

let test_loop_condition_shape () =
  (* While-loop guards lower to a negated compare feeding one conditional
     jump — no extra compare against zero. *)
  let p = compile "void main() { int i = 0; while (i < 5) i++; }" in
  let f = Prog.find_func p "main" in
  let cmps =
    List.filter
      (fun i ->
        match Instr.kind i with
        | Instr.Cmp (_, Types.Ge, _, _, _) -> true
        | _ -> false)
      f.body
  in
  Alcotest.(check int) "one negated compare" 1 (List.length cmps)

let test_default_return_inserted () =
  (* Falling off the end of a void function still yields a terminated
     body. *)
  let p = compile "void main() { int x = 1; }" in
  let f = Prog.find_func p "main" in
  match List.rev f.body with
  | last :: _ ->
      Alcotest.(check bool) "ends in control" true (Instr.is_control last)
  | [] -> Alcotest.fail "empty body"

let test_opids_unique_across_functions () =
  let p =
    compile
      "int f() { return 1; } int g() { return 2; } void main() { int x = f() + g(); }"
  in
  let all =
    List.concat_map (fun (f : Func.t) -> List.map Instr.opid f.body) p.funcs
    |> List.filter (fun id -> id >= 0)
  in
  Alcotest.(check int) "opids unique" (List.length all)
    (List.length (List.sort_uniq Int.compare all))

let test_runtime_errors () =
  (let src = "int a[2]; void main() { a[5] = 1; }" in
   match run_main src with
   | exception Interp.Runtime_error _ -> ()
   | _ -> Alcotest.fail "expected bounds error");
  (let src = "int out[1]; void main() { int z = 0; out[0] = 1 / z; }" in
   match run_main src with
   | exception Interp.Runtime_error _ -> ()
   | _ -> Alcotest.fail "expected division by zero");
  let src = "void main() { while (1) { } }" in
  match Interp.run (compile src) ~fuel:1000 with
  | exception Interp.Fuel_exhausted _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let suite =
  [
    ( "frontend.lower",
      [
        Alcotest.test_case "integer arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "float arithmetic" `Quick test_float_arithmetic;
        Alcotest.test_case "comparisons and logic" `Quick
          test_comparisons_and_logic;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "intrinsics" `Quick test_intrinsic_semantics;
        Alcotest.test_case "validates" `Quick test_validation_of_output;
        Alcotest.test_case "loop condition shape" `Quick
          test_loop_condition_shape;
        Alcotest.test_case "default return" `Quick test_default_return_inserted;
        Alcotest.test_case "opid uniqueness" `Quick
          test_opids_unique_across_functions;
        Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      ] );
  ]
