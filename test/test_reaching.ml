(* Reaching-definitions and def-use chain tests. *)

module Lower = Asipfb_frontend.Lower
module Prog = Asipfb_ir.Prog
module Instr = Asipfb_ir.Instr
module Reg = Asipfb_ir.Reg
module Cfg = Asipfb_cfg.Cfg
module Reaching = Asipfb_cfg.Reaching

let setup src =
  let p = Lower.compile src ~entry:"main" in
  let f = Prog.find_func p "main" in
  let cfg = Cfg.build f in
  (f, cfg, Reaching.compute cfg)

(* Find the opid of the k-th instruction satisfying [pred]. *)
let opid_of (f : Asipfb_ir.Func.t) pred =
  match List.find_opt pred f.body with
  | Some i -> Instr.opid i
  | None -> Alcotest.fail "instruction not found"

let defines_named name i =
  match Instr.def i with Some d -> Reg.name d = name | None -> false

let test_straight_line_kill () =
  let _, _, r =
    setup "int out[1]; void main() { int x = 1; x = 2; out[0] = x; }"
  in
  ignore r;
  (* With both defs in one block, only the second reaches the exit. *)
  let f, cfg, r =
    setup "int out[1]; void main() { int x = 1; x = 2; out[0] = x; }"
  in
  ignore cfg;
  let first = opid_of f (defines_named "x") in
  let out = Reaching.reach_out r 0 in
  Alcotest.(check bool) "first def killed" false (List.mem first out);
  Alcotest.(check bool) "some def of x reaches" true (out <> [])

let test_branch_merge () =
  let f, cfg, r =
    setup
      "int out[1]; void main() { int x = 1; if (out[0] > 0) x = 2; else x = 3; out[0] = x; }"
  in
  (* The join block sees both branch definitions but not the initial one. *)
  let join =
    Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2)
  in
  let reaching = Reaching.reach_in r join.index in
  let defs_of_x =
    List.filter
      (fun opid ->
        List.exists
          (fun i -> Instr.opid i = opid && defines_named "x" i)
          f.body)
      reaching
  in
  Alcotest.(check int) "two defs of x reach the join" 2
    (List.length defs_of_x)

let test_loop_def_reaches_itself () =
  let f, cfg, r =
    setup "void main() { int i = 0; while (i < 4) { i = i + 1; } }"
  in
  (* The loop-body increment reaches the loop header (around the back
     edge). *)
  let body_def =
    opid_of f (fun i ->
        match Instr.kind i with
        | Instr.Binop (Asipfb_ir.Types.Add, d, _, _) -> Reg.name d = "i"
        | _ -> false)
  in
  let header =
    Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2)
  in
  Alcotest.(check bool) "increment reaches header" true
    (List.mem body_def (Reaching.reach_in r header.index))

let test_defs_reaching_use () =
  let f, cfg, r =
    setup "int out[1]; void main() { int x = 5; int y = x + 1; out[0] = y; }"
  in
  ignore cfg;
  (* The use of x in the addition sees exactly the single definition. *)
  let def_x = opid_of f (defines_named "x") in
  let x_reg =
    match
      List.find_opt (defines_named "x") f.body
    with
    | Some i -> (match Instr.def i with Some d -> d | None -> assert false)
    | None -> assert false
  in
  (* Position of the add in block 0. *)
  let pos =
    match
      Asipfb_util.Listx.index_of
        (fun i ->
          match Instr.kind i with
          | Instr.Binop (Asipfb_ir.Types.Add, _, _, _) -> true
          | _ -> false)
        f.body
    with
    | Some p -> p
    | None -> Alcotest.fail "no add"
  in
  Alcotest.(check (list int)) "single reaching def" [ def_x ]
    (Reaching.defs_reaching_use r ~block:0 ~pos ~reg:x_reg)

let test_du_chains () =
  let f, _, r =
    setup
      "int out[2]; void main() { int x = 5; out[0] = x; out[1] = x * 2; }"
  in
  let def_x = opid_of f (defines_named "x") in
  let chains = Reaching.du_chains r in
  match List.assoc_opt def_x chains with
  | Some uses -> Alcotest.(check int) "x used twice" 2 (List.length uses)
  | None -> Alcotest.fail "def of x has no chain"

let test_single_def_uses () =
  let f, _, r =
    setup
      "int out[1]; void main() { int a = 1; int b; if (out[0] > 0) b = 2; else b = 3; out[0] = a + b; }"
  in
  let def_a = opid_of f (defines_named "a") in
  let singles = Reaching.single_def_uses r in
  Alcotest.(check bool) "a is single-def at its use" true
    (List.mem def_a singles);
  (* b has two reaching defs at its use, so neither qualifies. *)
  let b_defs =
    List.filter_map
      (fun i ->
        if defines_named "b" i then Some (Instr.opid i) else None)
      f.body
  in
  List.iter
    (fun opid ->
      Alcotest.(check bool) "b defs not single" false (List.mem opid singles))
    b_defs

let prop_reaching_terminates_and_sound =
  QCheck2.Test.make ~name:"every use has a reaching def on random programs"
    ~count:50 Gen_minic.gen_program (fun src ->
      let p = Lower.compile src ~entry:"main" in
      let f = Prog.find_func p "main" in
      let cfg = Cfg.build f in
      let r = Reaching.compute cfg in
      (* Every register use whose register is defined somewhere in the
         function must see at least one reaching definition (our generator
         initializes every variable before use). *)
      let defined_regs = Asipfb_ir.Func.defined_regs f in
      Array.for_all
        (fun (b : Cfg.block) ->
          List.for_all
            (fun (pos, i) ->
              List.for_all
                (fun reg ->
                  (not (Asipfb_ir.Reg.Set.mem reg defined_regs))
                  || Reaching.defs_reaching_use r ~block:b.index ~pos ~reg
                     <> [])
                (Instr.uses i))
            (List.mapi (fun pos i -> (pos, i)) b.instrs))
        cfg.blocks)

(* Chains are part of the --json surface: they must come out sorted and
   identical across recomputations. *)
let test_du_chains_deterministic () =
  let src =
    "int out[4]; void main() { int x = 1; int y = 2; int k; for (k = 0; k \
     < 4; k++) { x = x + y; out[k] = x; } out[0] = x + y; }"
  in
  let _, _, r1 = setup src in
  let _, _, r2 = setup src in
  let c1 = Reaching.du_chains r1 and c2 = Reaching.du_chains r2 in
  Alcotest.(check bool) "identical across runs" true (c1 = c2);
  Alcotest.(check bool)
    "sorted by def opid" true
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) c1 = c1);
  List.iter
    (fun (_, uses) ->
      Alcotest.(check bool)
        "uses sorted by site" true
        (List.sort compare uses = uses))
    c1;
  let o1 = Reaching.du_chains_opids r1 in
  Alcotest.(check bool)
    "opid chains sorted and deduped" true
    (List.for_all
       (fun (_, us) -> List.sort_uniq Int.compare us = us)
       o1
    && List.sort (fun (a, _) (b, _) -> Int.compare a b) o1 = o1)

let suite =
  [
    ( "cfg.reaching",
      [
        Alcotest.test_case "straight-line kill" `Quick test_straight_line_kill;
        Alcotest.test_case "branch merge" `Quick test_branch_merge;
        Alcotest.test_case "loop back edge" `Quick test_loop_def_reaches_itself;
        Alcotest.test_case "defs reaching a use" `Quick test_defs_reaching_use;
        Alcotest.test_case "def-use chains" `Quick test_du_chains;
        Alcotest.test_case "du chains deterministic" `Quick
          test_du_chains_deterministic;
        Alcotest.test_case "single-def uses" `Quick test_single_def_uses;
        QCheck_alcotest.to_alcotest prop_reaching_terminates_and_sound;
      ] );
  ]
