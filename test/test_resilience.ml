(* Resilience layer: per-benchmark failure isolation, fault injection with
   self-check containment, and budget-bounded detection with graceful
   degradation — the acceptance tests for the diagnostics subsystem. *)

module Benchmark = Asipfb_bench_suite.Benchmark
module Registry = Asipfb_bench_suite.Registry
module Fault = Asipfb_sim.Fault
module Diag = Asipfb_diag.Diag
module Detect = Asipfb_chain.Detect
module Coverage = Asipfb_chain.Coverage
module Opt_level = Asipfb_sched.Opt_level
module Pipeline = Asipfb.Pipeline

(* A deliberately broken benchmark: compiles cleanly, traps at runtime. *)
let broken : Benchmark.t =
  {
    name = "broken-div0";
    description = "deliberately broken (divides by zero)";
    data_input = "none";
    source = "int out[1]; void main() { int z = 0; out[0] = 1 / z; }";
    inputs = (fun () -> []);
    output_regions = [ "out" ];
  }

let fir () = Registry.find "fir"
let sewha () = Registry.find "sewha"

let test_analyze_result_ok () =
  match Pipeline.analyze_result (fir ()) with
  | Ok a ->
      Alcotest.(check int) "three levels" 3 (List.length a.scheds);
      Alcotest.(check bool) "profile populated" true
        (Asipfb_sim.Profile.total a.profile > 0)
  | Error d -> Alcotest.fail (Diag.to_string d)

let test_analyze_result_broken () =
  match Pipeline.analyze_result broken with
  | Ok _ -> Alcotest.fail "broken benchmark must not analyze"
  | Error d ->
      Alcotest.(check string) "exact diagnostic"
        "runtime error: integer division by zero" d.message;
      Alcotest.(check bool) "simulation stage" true
        (d.stage = Diag.Simulation);
      Alcotest.(check (option string)) "benchmark context"
        (Some "broken-div0")
        (List.assoc_opt "benchmark" d.context)

let test_suite_isolation () =
  (* One broken kernel yields one diagnostic; the rest of the suite
     completes. *)
  let r =
    Pipeline.run_suite
      ~benchmarks:[ fir (); broken; sewha () ]
      ~on_error:`Isolate ()
  in
  Alcotest.(check (list string)) "surviving analyses in order"
    [ "fir"; "sewha" ]
    (List.map (fun (a : Pipeline.analysis) -> a.benchmark.name) r.analyses);
  match r.failures with
  | [ f ] ->
      Alcotest.(check string) "failed benchmark" "broken-div0"
        f.failed_benchmark;
      Alcotest.(check string) "failure diagnostic"
        "runtime error: integer division by zero" f.diag.message
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one failure, got %d"
           (List.length fs))

(* --- fault injection ---------------------------------------------------- *)

let heavy_faults =
  { Fault.seed = 42; reg_corrupt_rate = 0.01; mem_fault_rate = 0.0;
    fuel_cap = None }

let test_fault_injection_contained () =
  (* At a corrupting rate, every fault either trips the expected-output
     self-check or traps in the interpreter — both become structured
     simulation diagnostics; nothing silently produces a wrong profile. *)
  let r =
    Pipeline.run_suite ~faults:heavy_faults
      ~benchmarks:[ fir (); sewha () ]
      ~on_error:`Isolate ()
  in
  Alcotest.(check (list string)) "exactly the injected failures"
    [ "fir"; "sewha" ]
    (List.map (fun (f : Pipeline.failure) -> f.failed_benchmark) r.failures);
  List.iter
    (fun (f : Pipeline.failure) ->
      Alcotest.(check bool)
        (f.failed_benchmark ^ " diag is simulation-stage") true
        (f.diag.stage = Diag.Simulation))
    r.failures

let test_fault_injection_deterministic () =
  let run () =
    let r =
      Pipeline.run_suite ~faults:heavy_faults
        ~benchmarks:[ fir (); sewha () ]
        ~on_error:`Isolate ()
    in
    List.map
      (fun (f : Pipeline.failure) ->
        (f.failed_benchmark, Diag.to_string f.diag))
      r.failures
  in
  Alcotest.(check (list (pair string string)))
    "fixed seed reproduces identical diagnostics" (run ()) (run ())

let test_fault_injection_disabled () =
  let r =
    Pipeline.run_suite ~faults:Fault.none ~benchmarks:[ fir () ]
      ~on_error:`Isolate ()
  in
  Alcotest.(check int) "no failures without faults" 0
    (List.length r.failures);
  Alcotest.(check int) "analysis completes" 1 (List.length r.analyses)

let test_fault_fuel_cap () =
  let faults = { Fault.none with fuel_cap = Some 100 } in
  match Pipeline.analyze_result ~faults (fir ()) with
  | Ok _ -> Alcotest.fail "fuel cap of 100 must exhaust fir"
  | Error d ->
      Alcotest.(check string) "premature fuel exhaustion diagnostic"
        "out of fuel (infinite loop?)" d.message;
      Alcotest.(check bool) "simulation stage" true
        (d.stage = Diag.Simulation);
      Alcotest.(check (option string)) "classified as a timeout"
        (Some "timeout")
        (List.assoc_opt "kind" d.context)

let test_self_check_clean_run () =
  let b = fir () in
  let o = Benchmark.run b in
  match Benchmark.self_check b o with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("clean run must self-check: " ^ msg)

(* --- search budgets and graceful degradation ---------------------------- *)

let shape ds =
  List.map (fun (d : Detect.detected) -> (d.classes, d.freq)) ds

let test_budget_truncation_equals_greedy () =
  let a = Pipeline.analyze (fir ()) in
  let exact =
    Pipeline.detect_report a (Pipeline.Query.make ~length:2 Opt_level.O1)
  in
  Alcotest.(check bool) "unbounded search is exact" true
    (exact.completeness = Detect.Exact);
  let truncated =
    Pipeline.detect_report a
      (Pipeline.Query.make ~length:2 ~budget:0 Opt_level.O1)
  in
  Alcotest.(check bool) "exhausted budget is tagged" true
    (truncated.completeness = Detect.Budget_truncated);
  let greedy =
    Detect.run_greedy
      (Detect.default_config ~length:2)
      (Pipeline.sched a Opt_level.O1)
      ~profile:a.profile
  in
  Alcotest.(check bool) "truncated result is the greedy result" true
    (shape truncated.detections = shape greedy);
  (* The greedy fallback is a (possibly strict) under-approximation. *)
  Alcotest.(check bool) "greedy finds no more than exact" true
    (List.length truncated.detections <= List.length exact.detections)

let test_large_budget_is_exact () =
  let a = Pipeline.analyze (fir ()) in
  let bounded =
    Pipeline.detect_report a
      (Pipeline.Query.make ~length:2 ~budget:10_000_000 Opt_level.O1)
  in
  let unbounded =
    Pipeline.detect_report a (Pipeline.Query.make ~length:2 Opt_level.O1)
  in
  Alcotest.(check bool) "large budget completes exactly" true
    (bounded.completeness = Detect.Exact);
  Alcotest.(check bool) "same detections" true
    (shape bounded.detections = shape unbounded.detections)

let test_o0_never_truncates () =
  (* Level 0 is a linear scan; even a zero budget cannot exhaust it. *)
  let a = Pipeline.analyze (fir ()) in
  let r =
    Pipeline.detect_report a
      (Pipeline.Query.make ~length:2 ~budget:0 Opt_level.O0)
  in
  Alcotest.(check bool) "O0 is always exact" true
    (r.completeness = Detect.Exact)

let test_coverage_budget_tagging () =
  let a = Pipeline.analyze (fir ()) in
  let exact = Pipeline.coverage a (Pipeline.Query.make Opt_level.O1) in
  Alcotest.(check bool) "default coverage is exact" true
    (exact.completeness = Detect.Exact);
  let config = { Coverage.default_config with budget = Some 0 } in
  let truncated =
    Pipeline.coverage ~config a (Pipeline.Query.make Opt_level.O1)
  in
  Alcotest.(check bool) "budgeted coverage is tagged" true
    (truncated.completeness = Detect.Budget_truncated)

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case "analyze_result ok" `Quick test_analyze_result_ok;
        Alcotest.test_case "analyze_result broken" `Quick
          test_analyze_result_broken;
        Alcotest.test_case "suite isolation" `Quick test_suite_isolation;
        Alcotest.test_case "faults contained" `Quick
          test_fault_injection_contained;
        Alcotest.test_case "faults deterministic" `Quick
          test_fault_injection_deterministic;
        Alcotest.test_case "faults disabled" `Quick
          test_fault_injection_disabled;
        Alcotest.test_case "fuel cap" `Quick test_fault_fuel_cap;
        Alcotest.test_case "self-check clean" `Quick test_self_check_clean_run;
        Alcotest.test_case "budget equals greedy" `Quick
          test_budget_truncation_equals_greedy;
        Alcotest.test_case "large budget exact" `Quick
          test_large_budget_is_exact;
        Alcotest.test_case "O0 never truncates" `Quick test_o0_never_truncates;
        Alcotest.test_case "coverage budget tag" `Quick
          test_coverage_budget_tagging;
      ] );
  ]
