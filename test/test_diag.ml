(* Structured-diagnostic tests: rendering, JSON, exception conversion. *)

module Diag = Asipfb_diag.Diag
module Frontend_diag = Asipfb_frontend.Frontend_diag
module Sim_diag = Asipfb_sim.Sim_diag
module Interp = Asipfb_sim.Interp
module Memory = Asipfb_sim.Memory

let test_to_string () =
  let d =
    Diag.make ~stage:Diag.Frontend ~file:"foo.c" ~pos:{ line = 3; col = 7 }
      ~context:[ ("phase", "parse") ]
      "syntax error: expected ')'"
  in
  Alcotest.(check string) "full rendering"
    "error[frontend] foo.c:3:7: syntax error: expected ')' (phase=parse)"
    (Diag.to_string d);
  let bare = Diag.make ~stage:Diag.Driver "plain message" in
  Alcotest.(check string) "bare rendering" "error[driver] plain message"
    (Diag.to_string bare);
  let warn = Diag.make ~severity:Diag.Warning ~stage:Diag.Detection "w" in
  Alcotest.(check string) "warning rendering" "warning[detection] w"
    (Diag.to_string warn);
  Alcotest.(check bool) "is_error" false (Diag.is_error warn)

let test_to_json () =
  let d =
    Diag.make ~stage:Diag.Simulation ~context:[ ("region", "a") ]
      "bad \"quote\"\nnewline"
  in
  Alcotest.(check string) "json escaping"
    "{\"severity\":\"error\",\"stage\":\"simulation\",\"message\":\"bad \
     \\\"quote\\\"\\nnewline\",\"context\":{\"region\":\"a\"}}"
    (Diag.to_json d);
  Alcotest.(check string) "empty report" "[]" (Diag.report_to_json []);
  let two = Diag.report_to_json [ d; d ] in
  Alcotest.(check bool) "report is an array" true
    (String.length two > 2 && two.[0] = '[' && String.contains two ',')

let test_frontend_conversion () =
  (* Parser error carries its source position into the diagnostic. *)
  (match Frontend_diag.compile_result "int main( {" ~entry:"main" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error d ->
      Alcotest.(check bool) "stage" true (d.stage = Diag.Frontend);
      (match d.pos with
      | Some p ->
          Alcotest.(check int) "line" 1 p.line;
          Alcotest.(check bool) "col positive" true (p.col > 0)
      | None -> Alcotest.fail "expected a position");
      Alcotest.(check bool) "syntax prefix" true
        (String.length d.message > 13
        && String.sub d.message 0 13 = "syntax error:"));
  (* Semantic error likewise. *)
  (match
     Frontend_diag.compile_result "void main() { x = 1; }" ~entry:"main"
   with
  | Ok _ -> Alcotest.fail "expected sema error"
  | Error d ->
      Alcotest.(check bool) "sema stage" true (d.stage = Diag.Frontend);
      Alcotest.(check bool) "sema context" true
        (List.mem_assoc "phase" d.context));
  (* Valid source compiles. *)
  match Frontend_diag.compile_result "void main() { }" ~entry:"main" with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d)

let test_sim_conversion () =
  (match Sim_diag.to_diag (Interp.Runtime_error "integer division by zero") with
  | Some d ->
      Alcotest.(check string) "runtime message"
        "runtime error: integer division by zero" d.message;
      Alcotest.(check bool) "sim stage" true (d.stage = Diag.Simulation)
  | None -> Alcotest.fail "Runtime_error must convert");
  (match Sim_diag.to_diag (Memory.Bounds ("a", 5)) with
  | Some d ->
      Alcotest.(check string) "bounds message"
        "memory access out of bounds: a[5]" d.message;
      Alcotest.(check bool) "bounds context" true
        (List.assoc_opt "region" d.context = Some "a"
        && List.assoc_opt "index" d.context = Some "5")
  | None -> Alcotest.fail "Bounds must convert");
  Alcotest.(check bool) "unrelated exception passes through" true
    (Sim_diag.to_diag Exit = None)

let test_pipeline_conversion () =
  let d = Asipfb.Pipeline.diag_of_exn (Failure "boom") in
  Alcotest.(check string) "failure message" "boom" d.message;
  Alcotest.(check bool) "failure stage" true (d.stage = Diag.Driver);
  let d =
    Asipfb.Pipeline.diag_of_exn (Asipfb_asip.Tsim.Runtime_error "tsim oops")
  in
  Alcotest.(check string) "tsim message" "runtime error: tsim oops" d.message;
  let unknown = Asipfb.Pipeline.diag_of_exn Exit in
  Alcotest.(check bool) "unknown becomes driver diag" true
    (unknown.stage = Diag.Driver);
  Alcotest.(check bool) "unknown tagged" true
    (List.assoc_opt "kind" unknown.context = Some "uncaught-exception")

let suite =
  [
    ( "diag",
      [
        Alcotest.test_case "to_string" `Quick test_to_string;
        Alcotest.test_case "to_json" `Quick test_to_json;
        Alcotest.test_case "frontend conversion" `Quick
          test_frontend_conversion;
        Alcotest.test_case "sim conversion" `Quick test_sim_conversion;
        Alcotest.test_case "pipeline conversion" `Quick
          test_pipeline_conversion;
      ] );
  ]
