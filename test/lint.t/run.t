Static verifier CLI: mini-C lint, IR dataflow checks, and the
schedule-legality proof at every optimization level.

One clean benchmark has no findings:

  $ asipfb lint fir
  0 finding(s) across 1 benchmark(s) (3 schedule(s) verified)

The whole suite verifies clean under --strict (exit 0):

  $ asipfb lint --strict
  0 finding(s) across 12 benchmark(s) (36 schedule(s) verified)

--json emits the machine-readable findings object (the service wire
schema, with an empty findings list when the run is clean) instead of
the human summary:

  $ asipfb lint fir --json
  {"kind":"findings","schema_version":3,"findings":[]}

An unknown benchmark is a one-line error, exit 1:

  $ asipfb lint nosuchbench
  asipfb: unknown benchmark "nosuchbench" (valid: fir, iir, pse, intfft, compress, flatten, smooth, edge, sewha, dft, bspline, feowf)
  [1]

The report/export drivers accept --verify; a bad mode is rejected in
the command body (exit 1, no usage dump):

  $ asipfb report table1 --verify nope
  asipfb: invalid verify mode "nope" (expected off, ir, full, or tv)
  [1]
