(* Tests for the second (retargeting) application mix. *)

module Benchmark = Asipfb_bench_suite.Benchmark
module Extra = Asipfb_bench_suite.Extra
module Value = Asipfb_sim.Value
module Interp = Asipfb_sim.Interp
module Opt_level = Asipfb_sched.Opt_level

let test_all_compile_run_validate () =
  List.iter
    (fun (b : Benchmark.t) ->
      let p = Benchmark.compile b in
      Asipfb_ir.Validate.check_exn p;
      let o = Benchmark.run b in
      Alcotest.(check bool) (b.name ^ " does real work") true
        (o.instrs_executed > 500))
    Extra.all

let test_equivalence_across_levels () =
  List.iter
    (fun (b : Benchmark.t) ->
      let p = Benchmark.compile b in
      let inputs = b.inputs () in
      let reference = Interp.run p ~inputs in
      List.iter
        (fun level ->
          let s = Asipfb_sched.Schedule.optimize ~level p in
          let o = Interp.run s.prog ~inputs in
          List.iter
            (fun region ->
              let want = Asipfb_sim.Memory.dump reference.memory region in
              let got = Asipfb_sim.Memory.dump o.memory region in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/%s" b.name
                   (Opt_level.to_string level) region)
                true
                (Array.for_all2 Value.close want got))
            b.output_regions)
        Opt_level.all)
    Extra.all

let test_matmul_correct () =
  (* Differential check against an OCaml matrix multiply on the same
     deterministic inputs. *)
  let b = Extra.matmul in
  let o = Benchmark.run b in
  let inputs = b.inputs () in
  let a_data = List.assoc "a" inputs and b_data = List.assoc "b" inputs in
  let got = Asipfb_sim.Memory.dump o.memory "c" in
  for i = 0 to 7 do
    for j = 0 to 7 do
      let expect = ref 0 in
      for k = 0 to 7 do
        expect :=
          !expect
          + Value.as_int a_data.((i * 8) + k) * Value.as_int b_data.((k * 8) + j)
      done;
      Alcotest.(check int)
        (Printf.sprintf "c[%d][%d]" i j)
        !expect
        (Value.as_int got.((i * 8) + j))
    done
  done

let test_acs_chain_signature () =
  (* The Viterbi kernel must expose its namesake chain. *)
  let a = Asipfb.Pipeline.analyze Extra.acs in
  let ds =
    Asipfb.Pipeline.detect a (Asipfb.Pipeline.Query.make ~length:2 Opt_level.O1)
  in
  Alcotest.(check bool) "add-compare detected" true
    (List.exists
       (fun (d : Asipfb_chain.Detect.detected) ->
         d.classes = [ "add"; "compare" ])
       ds)

let test_matmul_mac_signature () =
  let a = Asipfb.Pipeline.analyze Extra.matmul in
  let ds =
    Asipfb.Pipeline.detect a (Asipfb.Pipeline.Query.make ~length:2 Opt_level.O0)
  in
  match
    List.find_opt
      (fun (d : Asipfb_chain.Detect.detected) ->
        d.classes = [ "multiply"; "add" ])
      ds
  with
  | Some d ->
      Alcotest.(check bool) "MAC dominates even unoptimized" true
        (d.freq > 10.0)
  | None -> Alcotest.fail "matmul without multiply-add"

let test_quant_decisions_valid () =
  let o = Benchmark.run Extra.quant in
  let got = Asipfb_sim.Memory.dump o.memory "assignment" in
  Array.iter
    (fun v ->
      let c = Value.as_int v in
      Alcotest.(check bool) "codeword index in range" true (c >= 0 && c < 8))
    got

let test_retargeted_codegen_on_extra () =
  List.iter
    (fun (b : Benchmark.t) ->
      let p = Benchmark.compile b in
      let inputs = b.inputs () in
      let a = Asipfb.Pipeline.analyze b in
      let sched = Asipfb.Pipeline.sched a Opt_level.O1 in
      let choices =
        Asipfb_asip.Select.choose Asipfb_asip.Select.default_config sched
          ~profile:a.profile
      in
      let tp = Asipfb_asip.Codegen.generate_for_choices ~choices p in
      let t_out = Asipfb_asip.Tsim.run tp ~inputs in
      let reference = Interp.run p ~inputs in
      List.iter
        (fun region ->
          Alcotest.(check bool)
            (b.name ^ "/" ^ region ^ " target-equal")
            true
            (Array.for_all2 Value.close
               (Asipfb_sim.Memory.dump reference.memory region)
               (Asipfb_sim.Memory.dump t_out.memory region)))
        b.output_regions;
      Alcotest.(check bool) (b.name ^ " target no slower") true
        (t_out.cycles <= reference.instrs_executed))
    Extra.all

let suite =
  [
    ( "bench_suite.extra",
      [
        Alcotest.test_case "compile/run/validate" `Quick
          test_all_compile_run_validate;
        Alcotest.test_case "equivalence across levels" `Slow
          test_equivalence_across_levels;
        Alcotest.test_case "matmul against OCaml" `Quick test_matmul_correct;
        Alcotest.test_case "acs exposes add-compare" `Quick
          test_acs_chain_signature;
        Alcotest.test_case "matmul exposes MAC" `Quick
          test_matmul_mac_signature;
        Alcotest.test_case "quant decisions valid" `Quick
          test_quant_decisions_valid;
        Alcotest.test_case "retargeted codegen" `Slow
          test_retargeted_codegen_on_extra;
      ] );
  ]
