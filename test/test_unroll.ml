(* Loop unrolling tests: semantics, structure, and the unroll-invariance of
   the sequence analysis (the model-validation result). *)

module Lower = Asipfb_frontend.Lower
module Interp = Asipfb_sim.Interp
module Prog = Asipfb_ir.Prog
module Unroll = Asipfb_sched.Unroll
module Schedule = Asipfb_sched.Schedule
module Opt_level = Asipfb_sched.Opt_level
module Detect = Asipfb_chain.Detect
module Combine = Asipfb_chain.Combine

let compile src = Lower.compile src ~entry:"main"

let loop_src =
  "int out[1]; void main() { int i; int s = 0; for (i = 0; i < 9; i++) { s = s + i * 2; } out[0] = s; }"

let test_unroll_preserves_semantics () =
  let p = compile loop_src in
  let p' = Unroll.loop_once p in
  let o = Interp.run p and o' = Interp.run p' in
  Alcotest.(check int) "same sum"
    (Asipfb_sim.Value.as_int (Asipfb_sim.Memory.load o.memory "out" 0))
    (Asipfb_sim.Value.as_int (Asipfb_sim.Memory.load o'.memory "out" 0));
  Alcotest.(check bool) "code grew" true
    (Prog.total_instrs p' > Prog.total_instrs p);
  Alcotest.(check bool) "fewer dynamic branches" true
    (o'.instrs_executed < o.instrs_executed + 10)

let test_odd_trip_count () =
  (* 9 iterations with a doubled body: the guard between copies must fire
     on the odd leftover. *)
  let p' = Unroll.loop_once (compile loop_src) in
  let o' = Interp.run p' in
  Alcotest.(check int) "odd trip handled" 72
    (Asipfb_sim.Value.as_int (Asipfb_sim.Memory.load o'.memory "out" 0))

let test_zero_trip_count () =
  let src =
    "int out[1]; void main() { int i; out[0] = 5; for (i = 3; i < 0; i++) { out[0] = 9; } }"
  in
  let o' = Interp.run (Unroll.loop_once (compile src)) in
  Alcotest.(check int) "never entered" 5
    (Asipfb_sim.Value.as_int (Asipfb_sim.Memory.load o'.memory "out" 0))

let test_unrolled_loop_still_a_kernel () =
  let p' = Unroll.loop_once (compile loop_src) in
  let f = Prog.find_func p' "main" in
  let kernels = Schedule.find_kernels (Asipfb_cfg.Cfg.build f) in
  Alcotest.(check int) "one kernel" 1 (List.length kernels);
  match kernels with
  | [ k ] ->
      Alcotest.(check bool) "kernel spans the doubled body" true
        (List.length k.kernel_blocks > 2)
  | _ -> assert false

let test_branchy_loops_untouched () =
  let src =
    "int out[4]; void main() { int i; for (i = 0; i < 4; i++) { if (i > 1) { out[i] = 1; } else { out[i] = 2; } } }"
  in
  let p = compile src in
  let p' = Unroll.loop_once p in
  Alcotest.(check int) "no growth" (Prog.total_instrs p)
    (Prog.total_instrs p')

let test_suite_equivalence_under_unrolling () =
  List.iter
    (fun (b : Asipfb_bench_suite.Benchmark.t) ->
      let p = Asipfb_bench_suite.Benchmark.compile b in
      let p' = Unroll.loop_once p in
      let inputs = b.inputs () in
      let o = Interp.run p ~inputs and o' = Interp.run p' ~inputs in
      List.iter
        (fun region ->
          Alcotest.(check bool)
            (b.name ^ "/" ^ region)
            true
            (Array.for_all2 Asipfb_sim.Value.close
               (Asipfb_sim.Memory.dump o.memory region)
               (Asipfb_sim.Memory.dump o'.memory region)))
        b.output_regions)
    Asipfb_bench_suite.Registry.all

(* The model-validation result: kernel-based loop-carried detection agrees
   with detection on the physically unrolled program. *)
let test_detection_unroll_invariant () =
  List.iter
    (fun name ->
      let bench = Asipfb_bench_suite.Registry.find name in
      let a = Asipfb.Pipeline.analyze bench in
      let kernel_based =
        Combine.merge_families
          (Asipfb.Pipeline.detect a (Asipfb.Pipeline.Query.make ~length:2 Opt_level.O1))
      in
      let unrolled_prog = Unroll.loop_once a.prog in
      let outcome = Interp.run unrolled_prog ~inputs:(bench.inputs ()) in
      let sched = Schedule.optimize ~level:Opt_level.O1 unrolled_prog in
      let unrolled =
        Combine.merge_families
          (Detect.run (Detect.default_config ~length:2) sched
             ~profile:outcome.profile)
      in
      (* Speculation-derived pairs may legitimately differ: unrolling gives
         loop-exit blocks a second predecessor, which blocks some hoists
         (sewha's add-shift is the known case).  The invariance claim is
         therefore: the dominant kernel-based pairs overwhelmingly
         reappear at similar frequencies. *)
      let dominant =
        List.filter (fun (d : Detect.detected) -> d.freq > 8.0) kernel_based
      in
      let stable =
        List.filter
          (fun (d : Detect.detected) ->
            match
              List.find_opt
                (fun (u : Detect.detected) -> u.classes = d.classes)
                unrolled
            with
            | Some u -> Float.abs (u.freq -. d.freq) < 3.0
            | None -> false)
          dominant
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d of %d dominant pairs stable" name
           (List.length stable) (List.length dominant))
        true
        (dominant = []
        || float_of_int (List.length stable)
             /. float_of_int (List.length dominant)
           >= 0.75);
      (* The flagship carried pair must always survive. *)
      match
        List.find_opt
          (fun (d : Detect.detected) -> d.classes = [ "multiply"; "add" ])
          kernel_based
      with
      | Some d when d.freq > 8.0 ->
          Alcotest.(check bool) (name ^ ": multiply-add survives") true
            (List.exists
               (fun (u : Detect.detected) ->
                 u.classes = [ "multiply"; "add" ]
                 && Float.abs (u.freq -. d.freq) < 3.0)
               unrolled)
      | Some _ | None -> ())
    [ "sewha"; "feowf"; "bspline"; "dft" ]

let suite =
  [
    ( "sched.unroll",
      [
        Alcotest.test_case "preserves semantics" `Quick
          test_unroll_preserves_semantics;
        Alcotest.test_case "odd trip count" `Quick test_odd_trip_count;
        Alcotest.test_case "zero trip count" `Quick test_zero_trip_count;
        Alcotest.test_case "unrolled loop still a kernel" `Quick
          test_unrolled_loop_still_a_kernel;
        Alcotest.test_case "branchy loops untouched" `Quick
          test_branchy_loops_untouched;
        Alcotest.test_case "suite equivalence" `Slow
          test_suite_equivalence_under_unrolling;
        Alcotest.test_case "detection unroll-invariant" `Slow
          test_detection_unroll_invariant;
      ] );
  ]
