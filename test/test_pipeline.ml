(* Integration tests over the packaged pipeline and the experiment
   regeneration — the checks that pin the paper's qualitative results. *)

module Opt_level = Asipfb_sched.Opt_level
module Detect = Asipfb_chain.Detect
module Combine = Asipfb_chain.Combine

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

(* One shared suite analysis for all tests in this module (deterministic,
   so sharing is safe); computed lazily to keep unrelated test runs fast. *)
let suite_analyses =
  lazy (Asipfb.Pipeline.run_suite ~on_error:`Raise ()).analyses

let test_analyze_shape () =
  let a = Asipfb.Pipeline.analyze (Asipfb_bench_suite.Registry.find "sewha") in
  Alcotest.(check int) "three levels" 3 (List.length a.scheds);
  Alcotest.(check bool) "profile populated" true
    (Asipfb_sim.Profile.total a.profile > 0);
  Alcotest.(check bool) "profile total = executed" true
    (Asipfb_sim.Profile.total a.profile = a.outcome.instrs_executed);
  List.iter
    (fun level -> ignore (Asipfb.Pipeline.sched a level))
    Opt_level.all

let test_detect_via_pipeline () =
  let a = Asipfb.Pipeline.analyze (Asipfb_bench_suite.Registry.find "feowf") in
  let ds =
    Asipfb.Pipeline.detect a (Asipfb.Pipeline.Query.make ~length:2 Opt_level.O1)
  in
  Alcotest.(check bool) "feowf has fmultiply-fadd" true
    (List.exists
       (fun (d : Detect.detected) ->
         d.classes = [ "fmultiply"; "fadd" ])
       ds)

(* --- the paper's headline claims, as assertions -------------------------- *)

let freq_of analyses ~level ~length classes =
  let entries = Asipfb.Experiments.combined analyses ~level ~length in
  match Combine.find entries classes with
  | Some e -> e.combined_freq
  | None -> 0.0

let test_claim_mac_prominent () =
  (* multiply-add must be among the top sequences at every level. *)
  let analyses = Lazy.force suite_analyses in
  List.iter
    (fun level ->
      let f = freq_of analyses ~level ~length:2 [ "multiply"; "add" ] in
      Alcotest.(check bool)
        (Printf.sprintf "multiply-add prominent at %s"
           (Opt_level.to_string level))
        true (f > 5.0))
    Opt_level.all

let test_claim_optimization_exposes_sequences () =
  (* Figure 3's shape: the level-1 curve dominates level 0. *)
  let analyses = Lazy.force suite_analyses in
  let total level =
    Asipfb.Experiments.combined analyses ~level ~length:2
    |> Asipfb_util.Listx.sum_by (fun (e : Combine.entry) -> e.combined_freq)
  in
  Alcotest.(check bool) "O1 total detection above O0" true
    (total Opt_level.O1 > total Opt_level.O0);
  (* And more distinct sequences are visible. *)
  let count level =
    List.length (Asipfb.Experiments.combined analyses ~level ~length:2)
  in
  Alcotest.(check bool) "O1 sees at least as many sequences" true
    (count Opt_level.O1 >= count Opt_level.O0)

let test_claim_add_multiply_exposed_by_pipelining () =
  (* Table 2's add-multiply row: rare in sequential order, much more
     frequent with the parallelizing optimizations. *)
  let analyses = Lazy.force suite_analyses in
  let f0 = freq_of analyses ~level:Opt_level.O0 ~length:2 [ "add"; "multiply" ] in
  let f1 = freq_of analyses ~level:Opt_level.O1 ~length:2 [ "add"; "multiply" ] in
  Alcotest.(check bool) "exposed by optimization" true (f1 > f0)

let test_claim_renaming_hurts_some_chains () =
  (* The paper's register-renaming observation: level 2 loses part of what
     level 1 exposed (total length-2 detection drops). *)
  let analyses = Lazy.force suite_analyses in
  let total level =
    Asipfb.Experiments.combined analyses ~level ~length:2
    |> Asipfb_util.Listx.sum_by (fun (e : Combine.entry) -> e.combined_freq)
  in
  Alcotest.(check bool) "O2 below O1" true
    (total Opt_level.O2 < total Opt_level.O1);
  Alcotest.(check bool) "O2 still above O0" true
    (total Opt_level.O2 > total Opt_level.O0)

let test_claim_coverage_improves () =
  (* Table 3's summary: on the detailed benchmarks, compiler feedback lifts
     coverage on the clear majority. *)
  let analyses = Lazy.force suite_analyses in
  let rows = Asipfb.Experiments.table3_rows analyses in
  Alcotest.(check int) "five detailed benchmarks" 5 (List.length rows);
  let improved =
    List.filter
      (fun (_, variants) ->
        match
          ( List.assoc_opt true variants,
            List.assoc_opt false variants )
        with
        | Some w, Some wo -> w.Asipfb_chain.Coverage.coverage >= wo.coverage
        | _ -> false)
      rows
  in
  Alcotest.(check bool) "majority improved" true (List.length improved >= 3)

let test_claim_ilp_grows () =
  let analyses = Lazy.force suite_analyses in
  List.iter
    (fun (a : Asipfb.Pipeline.analysis) ->
      let s1 = Asipfb.Pipeline.sched a Opt_level.O1 in
      let mean_ilp =
        Asipfb_util.Listx.sum_by
          (fun (f : Asipfb_ir.Func.t) -> Asipfb_sched.Schedule.ilp s1 f.name)
          s1.prog.funcs
        /. float_of_int (List.length s1.prog.funcs)
      in
      Alcotest.(check bool)
        (a.benchmark.name ^ " compaction finds parallelism")
        true (mean_ilp > 1.0))
    analyses

(* --- rendered artifacts --------------------------------------------------- *)

let test_table1_renders () =
  let t = Asipfb.Experiments.table1 () in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("mentions " ^ name) true (contains t name))
    Asipfb_bench_suite.Registry.names

let test_table2_renders () =
  let analyses = Lazy.force suite_analyses in
  let t = Asipfb.Experiments.table2 analyses in
  List.iter
    (fun row ->
      Alcotest.(check bool) ("mentions " ^ row) true (contains t row))
    [ "multiply-add"; "add-multiply"; "add-add"; "add-multiply-add";
      "multiply-add-add" ]

let test_figures_render () =
  let analyses = Lazy.force suite_analyses in
  List.iter
    (fun length ->
      let fig = Asipfb.Experiments.figure_combined analyses ~length in
      Alcotest.(check bool) "chart has legend" true
        (contains fig "no optimization");
      let per = Asipfb.Experiments.figure_per_benchmark analyses ~length in
      Alcotest.(check bool) "per-benchmark mentions fir" true
        (contains per "fir"))
    [ 2; 4 ]

let test_table3_renders () =
  let analyses = Lazy.force suite_analyses in
  let t = Asipfb.Experiments.table3 analyses in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("covers " ^ name) true (contains t name))
    [ "sewha"; "feowf"; "bspline"; "edge"; "iir" ]

let test_extension_reports_render () =
  let analyses = Lazy.force suite_analyses in
  let ilp = Asipfb.Experiments.ilp_report analyses in
  Alcotest.(check bool) "ilp has all benchmarks" true (contains ilp "feowf");
  let asip = Asipfb.Experiments.asip_report analyses in
  Alcotest.(check bool) "asip mentions speedup" true (contains asip "speedup");
  let vliw = Asipfb.Experiments.vliw_report analyses in
  Alcotest.(check bool) "vliw has width columns" true (contains vliw "8-issue");
  let resched = Asipfb.Experiments.resched_report analyses in
  Alcotest.(check bool) "resched has both estimates" true
    (contains resched "schedule-level");
  let opmix = Asipfb.Experiments.opmix_report analyses in
  Alcotest.(check bool) "opmix has class columns" true
    (contains opmix "multiply")

let test_ablation_reports_render () =
  let analyses = Lazy.force suite_analyses in
  let a1 = Asipfb.Experiments.ablation_pipelining analyses in
  Alcotest.(check bool) "A1 has totals line" true
    (contains a1 "total detected");
  let a3 = Asipfb.Experiments.ablation_motion analyses in
  Alcotest.(check bool) "A3 has totals line" true
    (contains a3 "total detected")

let test_codegen_report_renders () =
  let analyses = Lazy.force suite_analyses in
  let r = Asipfb.Experiments.codegen_report analyses in
  Alcotest.(check bool) "codegen mentions measured column" true
    (contains r "measured");
  List.iter
    (fun name ->
      Alcotest.(check bool) ("codegen covers " ^ name) true (contains r name))
    Asipfb_bench_suite.Registry.names

let test_extra_report_renders () =
  let analyses = Lazy.force suite_analyses in
  let r = Asipfb.Experiments.extra_report analyses in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("extra covers " ^ name) true (contains r name))
    [ "matmul"; "xcorr"; "acs"; "quant" ]

let suite =
  [
    ( "pipeline",
      [
        Alcotest.test_case "analysis shape" `Quick test_analyze_shape;
        Alcotest.test_case "detect via pipeline" `Quick
          test_detect_via_pipeline;
      ] );
    ( "pipeline.claims",
      [
        Alcotest.test_case "MAC prominent at all levels" `Slow
          test_claim_mac_prominent;
        Alcotest.test_case "optimization exposes sequences" `Slow
          test_claim_optimization_exposes_sequences;
        Alcotest.test_case "add-multiply exposed by pipelining" `Slow
          test_claim_add_multiply_exposed_by_pipelining;
        Alcotest.test_case "renaming hurts some chains" `Slow
          test_claim_renaming_hurts_some_chains;
        Alcotest.test_case "coverage improves with feedback" `Slow
          test_claim_coverage_improves;
        Alcotest.test_case "compaction finds ILP" `Slow test_claim_ilp_grows;
      ] );
    ( "pipeline.artifacts",
      [
        Alcotest.test_case "table1" `Quick test_table1_renders;
        Alcotest.test_case "table2" `Slow test_table2_renders;
        Alcotest.test_case "figures" `Slow test_figures_render;
        Alcotest.test_case "table3" `Slow test_table3_renders;
        Alcotest.test_case "extension reports" `Slow
          test_extension_reports_render;
        Alcotest.test_case "ablation reports" `Slow
          test_ablation_reports_render;
        Alcotest.test_case "codegen report" `Slow test_codegen_report_renders;
        Alcotest.test_case "extra report" `Slow test_extra_report_renders;
      ] );
  ]
