(* Supervision layer: deterministic chaos decisions, retry/backoff
   accounting, quarantine, the cooperative watchdog, cache checksum
   self-healing, and the oracle degradation ladder — plus the central
   chaos property: a chaos run whose retries succeed produces results
   identical to a fault-free run. *)

module Benchmark = Asipfb_bench_suite.Benchmark
module Registry = Asipfb_bench_suite.Registry
module Pipeline = Asipfb.Pipeline
module Engine = Asipfb_engine.Engine
module Cache = Asipfb_engine.Cache
module Supervise = Asipfb_supervise.Supervise
module Chaos = Asipfb_supervise.Chaos
module Diag = Asipfb_diag.Diag

let fir () = Registry.find "fir"

let fresh_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.temp_dir "asipfb_supervise_test" (string_of_int !n)

(* No real sleeping and no quarantine in unit-test policies unless the
   test is about those behaviors. *)
let fast_policy =
  {
    Supervise.Policy.default with
    sleep = (fun _ -> ());
    backoff_base_s = 0.001;
  }

(* --- chaos determinism -------------------------------------------------- *)

let test_chaos_deterministic () =
  let c1 = Chaos.create { seed = 42; rate = 0.5 } in
  let c2 = Chaos.create { seed = 42; rate = 0.5 } in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        ("task_crash agrees for " ^ key)
        (Chaos.task_crash c1 ~key) (Chaos.task_crash c2 ~key);
      Alcotest.(check bool)
        ("decision is repeatable for " ^ key)
        (Chaos.task_crash c1 ~key) (Chaos.task_crash c1 ~key))
    [ "base:fir#1"; "base:fir#2"; "sched:sor@O1#1"; "x#1" ];
  let data = String.init 64 Char.chr in
  Alcotest.(check string) "mangle is deterministic"
    (Chaos.mangle c1 ~site:"cache-write" ~key:"k" data)
    (Chaos.mangle c2 ~site:"cache-write" ~key:"k" data)

let test_chaos_rates () =
  let never = Chaos.create { seed = 7; rate = 0.0 } in
  let always = Chaos.create { seed = 7; rate = 1.0 } in
  let keys = List.init 50 (fun i -> "k" ^ string_of_int i) in
  Alcotest.(check bool) "rate 0 never fires" false
    (List.exists (fun key -> Chaos.task_crash never ~key) keys);
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all (fun key -> Chaos.task_crash always ~key) keys);
  Alcotest.(check bool) "rate 1 always mangles" true
    (List.for_all
       (fun key -> Chaos.mangle always ~site:"cache-write" ~key "payload" <> "payload")
       keys);
  (match Chaos.create { seed = 0; rate = 1.5 } with
  | _ -> Alcotest.fail "rate out of range must be rejected"
  | exception Invalid_argument _ -> ())

(* --- retry / classification -------------------------------------------- *)

let test_retry_transient_until_success () =
  let slept = ref [] in
  let policy =
    { fast_policy with sleep = (fun d -> slept := d :: !slept); retries = 3 }
  in
  let sup = Supervise.create ~policy () in
  let calls = ref 0 in
  let result =
    Supervise.run sup ~group:"g" ~name:"t" (fun ctx ->
        incr calls;
        Alcotest.(check int) "ctx.attempt tracks the loop" !calls
          ctx.Supervise.attempt;
        if !calls < 3 then raise (Sys_error "transient I/O");
        "done")
  in
  Alcotest.(check string) "eventually succeeds" "done"
    (Result.get_ok result);
  Alcotest.(check int) "two failures before success" 3 !calls;
  Alcotest.(check int) "two backoff sleeps" 2 (List.length !slept);
  List.iter
    (fun d -> Alcotest.(check bool) "backoff is positive" true (d > 0.0))
    !slept;
  let s = Supervise.stats sup in
  Alcotest.(check int) "attempts" 3 s.attempts;
  Alcotest.(check int) "retries" 2 s.retries;
  Alcotest.(check int) "failures" 2 s.failures;
  (* The recovery is on the record. *)
  Alcotest.(check bool) "recovered event reported" true
    (List.exists
       (fun d -> List.assoc_opt "kind" d.Diag.context = Some "recovered")
       (Supervise.report sup))

let test_permanent_not_retried () =
  let sup = Supervise.create ~policy:{ fast_policy with retries = 5 } () in
  let calls = ref 0 in
  (match
     Supervise.run sup ~group:"g" ~name:"t" (fun _ ->
         incr calls;
         failwith "a real bug")
   with
  | Ok _ -> Alcotest.fail "must fail"
  | Error (Failure msg) ->
      Alcotest.(check string) "original exception surfaces" "a real bug" msg
  | Error _ -> Alcotest.fail "unexpected exception");
  Alcotest.(check int) "permanent failure runs once" 1 !calls;
  Alcotest.(check int) "no retries" 0 (Supervise.stats sup).retries

let test_classify () =
  Alcotest.(check bool) "chaos is transient" true
    (Supervise.classify (Chaos.Injected "x") = Supervise.Transient);
  Alcotest.(check bool) "sys_error is transient" true
    (Supervise.classify (Sys_error "x") = Supervise.Transient);
  Alcotest.(check bool) "watchdog is timeout" true
    (Supervise.classify
       (Asipfb_sim.Interp.Watchdog_timeout { instrs_executed = 1 })
    = Supervise.Timeout);
  Alcotest.(check bool) "fuel exhaustion is timeout" true
    (Supervise.classify
       (Asipfb_sim.Interp.Fuel_exhausted { instrs_executed = 1; fuel = 1 })
    = Supervise.Timeout);
  Alcotest.(check bool) "everything else is permanent" true
    (Supervise.classify Exit = Supervise.Permanent)

(* --- quarantine --------------------------------------------------------- *)

let test_quarantine_after_repeated_failures () =
  let policy = { fast_policy with retries = 1; quarantine_threshold = 3 } in
  let sup = Supervise.create ~policy () in
  let fail_task name =
    Supervise.run sup ~group:"bad-bench" ~name (fun _ ->
        raise (Sys_error "boom"))
  in
  (* Task 1: two attempts (1 retry), both fail -> 2 failed attempts. *)
  (match fail_task "base:bad-bench" with
  | Error (Sys_error _) -> ()
  | _ -> Alcotest.fail "task 1 must fail with the original exception");
  Alcotest.(check bool) "not yet quarantined" false
    (Supervise.is_quarantined sup "bad-bench");
  (* Task 2: first failure crosses the threshold. *)
  (match fail_task "sched:bad-bench@O0" with
  | Error (Sys_error _) -> ()
  | _ -> Alcotest.fail "task 2 must fail");
  Alcotest.(check bool) "quarantined at threshold" true
    (Supervise.is_quarantined sup "bad-bench");
  (* Task 3: skipped without running the body. *)
  (match
     Supervise.run sup ~group:"bad-bench" ~name:"sched:bad-bench@O1"
       (fun _ -> Alcotest.fail "quarantined body must not run")
   with
  | Error (Supervise.Quarantined { benchmark; failed_attempts }) ->
      Alcotest.(check string) "benchmark named" "bad-bench" benchmark;
      Alcotest.(check int) "attempt count carried" 3 failed_attempts
  | _ -> Alcotest.fail "task 3 must be quarantined");
  (* Other groups are unaffected. *)
  Alcotest.(check bool) "other group still runs" true
    (Supervise.run sup ~group:"good" ~name:"t" (fun _ -> true)
    |> Result.get_ok);
  (match Supervise.quarantine_records sup with
  | [ (g, n, history) ] ->
      Alcotest.(check string) "record group" "bad-bench" g;
      Alcotest.(check int) "record count" 3 n;
      Alcotest.(check int) "history has every failed attempt" 3
        (List.length history);
      Alcotest.(check string) "history is oldest-first" "base:bad-bench"
        (List.hd history).Supervise.task
  | l -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length l)));
  (* The quarantine diagnostic carries the retry history. *)
  let q =
    List.find
      (fun d -> List.assoc_opt "kind" d.Diag.context = Some "quarantined")
      (Supervise.report sup)
  in
  Alcotest.(check bool) "diag lists attempt history" true
    (List.mem_assoc "attempt-1" q.Diag.context
    && List.mem_assoc "attempt-3" q.Diag.context)

(* --- watchdog ----------------------------------------------------------- *)

let wedge : Benchmark.t =
  {
    name = "wedge";
    description = "deliberately near-unbounded loop";
    data_input = "none";
    source =
      "int out[1];\n\
       void main() {\n\
      \  int i;\n\
      \  int acc = 0;\n\
      \  for (i = 0; i < 2000000000; i++) { acc = acc + 1; }\n\
      \  out[0] = acc;\n\
       }";
    inputs = (fun () -> []);
    output_regions = [ "out" ];
  }

let test_watchdog_aborts_core () =
  (* An already-expired watchdog aborts at the first poll interval. *)
  let prog = Benchmark.compile wedge in
  (match
     Asipfb_sim.Interp.run prog ~inputs:[] ~watchdog:(fun () -> true)
   with
  | _ -> Alcotest.fail "expired watchdog must abort the run"
  | exception Asipfb_sim.Interp.Watchdog_timeout { instrs_executed } ->
      Alcotest.(check bool) "aborted near the first poll" true
        (instrs_executed >= Asipfb_exec.Core.watchdog_interval
        && instrs_executed < 4 * Asipfb_exec.Core.watchdog_interval));
  (* A watchdog that never expires changes nothing (on a terminating
     benchmark). *)
  let b0 = fir () in
  let prog = Benchmark.compile b0 in
  let inputs = b0.inputs () in
  let a = Asipfb_sim.Interp.run prog ~inputs in
  let b = Asipfb_sim.Interp.run prog ~inputs ~watchdog:(fun () -> false) in
  Alcotest.(check bool) "unexpired watchdog is invisible" true
    (Asipfb_sim.Fallback.outcomes_agree a b)

let test_wedged_task_killed_and_classified_timeout () =
  (* The acceptance scenario: a wedged simulation is killed by the
     wall-clock watchdog and the failure is classified `Timeout. *)
  let policy =
    { Supervise.Policy.off with task_timeout_s = Some 0.05 }
  in
  let engine = Engine.create ~jobs:1 ~cache:false ~policy () in
  let started = Unix.gettimeofday () in
  let r =
    Pipeline.run_suite ~engine ~benchmarks:[ wedge ] ~on_error:`Isolate ()
  in
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check bool) "killed well before fuel exhaustion" true
    (elapsed < 2.0);
  match r.failures with
  | [ f ] ->
      Alcotest.(check bool) "classified as timeout" true
        (Pipeline.classify_failure f = `Timeout);
      Alcotest.(check int) "timeout counted" 1
        (Engine.stats engine).supervise.timeouts
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 failure, got %d" (List.length l))

(* --- oracle fallback ladder --------------------------------------------- *)

let test_core_crash_falls_back_to_ref_interp () =
  let b = fir () in
  let prog = Benchmark.compile b in
  let inputs = b.inputs () in
  let clean = Asipfb_sim.Interp.run prog ~inputs in
  let out, diags =
    Asipfb_sim.Fallback.run prog ~inputs ~inject_core_crash:true
      ~benchmark:b.name
  in
  Alcotest.(check bool) "reference result agrees with the core" true
    (Asipfb_sim.Fallback.outcomes_agree clean out);
  (match diags with
  | [ d ] ->
      Alcotest.(check (option string)) "degraded diagnostic attached"
        (Some "degraded")
        (List.assoc_opt "kind" d.Diag.context)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 diag, got %d" (List.length l)))

let test_cross_check_clean_run_is_silent () =
  let b = fir () in
  let prog = Benchmark.compile b in
  let out, diags =
    Asipfb_sim.Fallback.run prog ~inputs:(b.inputs ()) ~cross_check:true
      ~benchmark:b.name
  in
  Alcotest.(check int) "no diagnostics on agreement" 0 (List.length diags);
  Alcotest.(check bool) "outcome is the core's" true (out.instrs_executed > 0)

(* --- cache self-healing ------------------------------------------------- *)

let entry_file dir =
  (* Cache entries live in digest-prefix subdirectories of [dir]. *)
  let rec walk dir =
    Array.to_list (Sys.readdir dir)
    |> List.concat_map (fun f ->
           let p = Filename.concat dir f in
           if Sys.is_directory p then walk p
           else if Filename.check_suffix p ".cache" then [ p ]
           else [])
  in
  match walk dir with
  | [ f ] -> f
  | l -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length l))

let corrupt_with f dir =
  let file = entry_file dir in
  let data = In_channel.with_open_bin file In_channel.input_all in
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (f data))

let self_heal_case name corrupter () =
  let dir = fresh_cache_dir () in
  let c1 : string Cache.t = Cache.create ~dir () in
  ignore (Cache.find_or_compute c1 ~key:"abcd" (fun () -> "original"));
  corrupt_with corrupter dir;
  let events = ref [] in
  let c2 : string Cache.t =
    Cache.create ~dir ~on_event:(fun e -> events := e :: !events) ()
  in
  Alcotest.(check string)
    (name ^ ": corrupt entry recomputed")
    "healed"
    (Cache.find_or_compute c2 ~key:"abcd" (fun () -> "healed"));
  Alcotest.(check int) (name ^ ": corruption counted") 1
    (Cache.stats c2).corrupt;
  (match !events with
  | [ Cache.Corrupt_entry { key; _ } ] ->
      Alcotest.(check string) (name ^ ": event names the key") "abcd" key
  | _ -> Alcotest.fail (name ^ ": expected one Corrupt_entry event"));
  Alcotest.(check int) (name ^ ": rewritten to disk") 1
    (Cache.stats c2).stores;
  (* Self-healed: a third cache sees a valid entry again. *)
  let c3 : string Cache.t = Cache.create ~dir () in
  Alcotest.(check string)
    (name ^ ": healed entry loads")
    "healed"
    (Cache.find_or_compute c3 ~key:"abcd" (fun () ->
         Alcotest.fail "healed entry must load from disk"));
  Alcotest.(check int) (name ^ ": healed entry is a disk hit") 1
    (Cache.stats c3).disk_hits

let test_cache_heals_flipped_byte =
  self_heal_case "flip" (fun data ->
      (* Flip one payload byte past the header; the digest must catch it. *)
      let b = Bytes.of_string data in
      let i = String.length data - 3 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      Bytes.to_string b)

let test_cache_heals_truncation =
  self_heal_case "truncate" (fun data ->
      String.sub data 0 (String.length data / 2))

let test_cache_heals_checksum_flip =
  self_heal_case "checksum" (fun data ->
      (* Flip a byte of the stored digest itself. *)
      let b = Bytes.of_string data in
      let i = String.length "ASFBC1\n" (* first byte of the digest *) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      Bytes.to_string b)

let test_cache_heals_garbage =
  self_heal_case "garbage" (fun _ -> "not a cache entry at all")

let test_cache_chaos_mangling_never_served () =
  (* With chaos mangling every write and read, the checksum must turn
     every disk access into a detected corruption or a miss — the
     computed value always wins. *)
  let dir = fresh_cache_dir () in
  let chaos = Chaos.create { seed = 9; rate = 1.0 } in
  let c : string Cache.t = Cache.create ~dir ~chaos () in
  Alcotest.(check string) "first lookup computes" "v1"
    (Cache.find_or_compute c ~key:"k" (fun () -> "v1"));
  let c2 : string Cache.t = Cache.create ~dir ~chaos () in
  Alcotest.(check string) "mangled entry never served" "v2"
    (Cache.find_or_compute c2 ~key:"k" (fun () -> "v2"))

let test_cache_io_error_disables_persistence () =
  (* Point the cache at a path that is a regular file: the first store
     fails with Sys_error, which must degrade persistence, not crash. *)
  let bogus = Filename.temp_file "asipfb_not_a_dir" "" in
  let events = ref [] in
  let c : string Cache.t =
    Cache.create ~dir:bogus ~on_event:(fun e -> events := e :: !events) ()
  in
  Alcotest.(check bool) "starts persistent" true (Cache.persistent c);
  Alcotest.(check string) "lookup still computes" "v"
    (Cache.find_or_compute c ~key:"k" (fun () -> "v"));
  Alcotest.(check bool) "persistence disabled after Sys_error" false
    (Cache.persistent c);
  Alcotest.(check int) "io error counted" 1 (Cache.stats c).io_errors;
  (match !events with
  | [ Cache.Io_error { op; _ } ] ->
      Alcotest.(check string) "store failed" "store" op
  | _ -> Alcotest.fail "expected one Io_error event");
  (* Later lookups neither retry the dead directory nor fail. *)
  Alcotest.(check string) "cache keeps working in memory" "v"
    (Cache.find_or_compute c ~key:"k" (fun () -> "other"));
  Alcotest.(check int) "no further io errors" 1 (Cache.stats c).io_errors

(* --- chaos end-to-end: retries preserve results -------------------------- *)

let chaos_policy =
  {
    fast_policy with
    retries = 5;
    quarantine_threshold = 0 (* isolate the retry property from quarantine *);
  }

let analyses_equal (a : Pipeline.analysis) (b : Pipeline.analysis) =
  a.prog = b.prog
  && Asipfb_sim.Profile.to_alist a.profile
     = Asipfb_sim.Profile.to_alist b.profile
  && a.scheds = b.scheds
  && Asipfb_sim.Fallback.outcomes_agree a.outcome b.outcome

let prop_chaos_run_matches_clean =
  QCheck.Test.make
    ~name:"chaos run with successful retries is identical to fault-free run"
    ~count:8
    QCheck.(
      pair (int_range 0 (List.length Registry.all - 1)) (int_range 0 9999))
    (fun (i, seed) ->
      let b = List.nth Registry.all i in
      let clean =
        Engine.analyze (Engine.sequential ()) b ~verify:`Ir
      in
      let chaotic_engine =
        Engine.create ~jobs:1 ~cache:false ~policy:chaos_policy
          ~chaos:{ Chaos.seed; rate = 0.15 } ()
      in
      match Engine.analyze_all chaotic_engine ~verify:`Ir [ b ] with
      | [ (_, Ok chaotic) ] ->
          analyses_equal clean chaotic
          && clean.verify = chaotic.verify
      | [ (_, Error exn) ] ->
          QCheck.Test.fail_reportf
            "chaos run failed despite retries: %s" (Printexc.to_string exn)
      | _ -> false)

let test_chaos_cache_dir_end_to_end () =
  (* Chaos over a persistent cache: corrupt entries are healed, the
     analysis equals the clean one, and the run records what happened. *)
  let dir = fresh_cache_dir () in
  let b = fir () in
  let clean = Engine.analyze (Engine.sequential ()) b in
  let mk () =
    Engine.create ~jobs:1 ~cache_dir:dir ~policy:chaos_policy
      ~chaos:{ Chaos.seed = 4242; rate = 0.5 } ()
  in
  let run engine =
    match Engine.analyze_all engine [ b ] with
    | [ (_, Ok a) ] -> a
    | [ (_, Error exn) ] -> raise exn
    | _ -> assert false
  in
  let first = run (mk ()) in
  let second = run (mk ()) (* reuses the possibly-mangled directory *) in
  Alcotest.(check bool) "cold chaos run equals clean" true
    (analyses_equal clean first);
  Alcotest.(check bool) "warm chaos run equals clean" true
    (analyses_equal clean second)

let suite =
  [
    ( "supervise",
      [
        Alcotest.test_case "chaos deterministic" `Quick
          test_chaos_deterministic;
        Alcotest.test_case "chaos rates" `Quick test_chaos_rates;
        Alcotest.test_case "retry until success" `Quick
          test_retry_transient_until_success;
        Alcotest.test_case "permanent not retried" `Quick
          test_permanent_not_retried;
        Alcotest.test_case "classification" `Quick test_classify;
        Alcotest.test_case "quarantine" `Quick
          test_quarantine_after_repeated_failures;
        Alcotest.test_case "watchdog aborts core" `Quick
          test_watchdog_aborts_core;
        Alcotest.test_case "wedged task classified timeout" `Quick
          test_wedged_task_killed_and_classified_timeout;
        Alcotest.test_case "core crash falls back to oracle" `Quick
          test_core_crash_falls_back_to_ref_interp;
        Alcotest.test_case "cross-check clean run silent" `Quick
          test_cross_check_clean_run_is_silent;
        Alcotest.test_case "cache heals flipped byte" `Quick
          test_cache_heals_flipped_byte;
        Alcotest.test_case "cache heals truncation" `Quick
          test_cache_heals_truncation;
        Alcotest.test_case "cache heals checksum flip" `Quick
          test_cache_heals_checksum_flip;
        Alcotest.test_case "cache heals garbage" `Quick
          test_cache_heals_garbage;
        Alcotest.test_case "chaos-mangled entries never served" `Quick
          test_cache_chaos_mangling_never_served;
        Alcotest.test_case "io error disables persistence" `Quick
          test_cache_io_error_disables_persistence;
        QCheck_alcotest.to_alcotest prop_chaos_run_matches_clean;
        Alcotest.test_case "chaos over persistent cache" `Quick
          test_chaos_cache_dir_end_to_end;
      ] );
  ]
