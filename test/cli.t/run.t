CLI error paths: every user error exits 1 with a clean one-line
"asipfb:" message (no backtraces, no cmdliner usage dumps).

Unknown benchmark:

  $ asipfb compile nosuchbench
  asipfb: unknown benchmark "nosuchbench" (valid: fir, iir, pse, intfft, compress, flatten, smooth, edge, sewha, dft, bspline, feowf)
  [1]

Invalid optimization level (validated in the command body, not by
cmdliner, so the exit code is 1 rather than 124):

  $ asipfb optimize fir -O 9
  asipfb: invalid optimization level "9" (expected 0, 1, or 2)
  [1]

Malformed source is a positioned frontend diagnostic:

  $ cat > bad.c <<'EOF'
  > int main( {
  > EOF
  $ asipfb check bad.c
  asipfb: error[frontend] bad.c:1:11: syntax error: expected a type (found '{') (phase=parse)
  [1]

Semantic errors carry positions too:

  $ cat > undef.c <<'EOF'
  > void main() { x = 1; }
  > EOF
  $ asipfb check undef.c
  asipfb: error[frontend] undef.c:1:15: semantic error: undeclared variable 'x' (phase=sema)
  [1]

A missing file is still a one-line message:

  $ asipfb check does-not-exist.c
  asipfb: does-not-exist.c: No such file or directory
  [1]

A valid file checks clean:

  $ cat > ok.c <<'EOF'
  > int out[1];
  > void main() { out[0] = 2 + 2; }
  > EOF
  $ asipfb check ok.c
  ok.c: ok (1 function(s), 1 region(s))

Seeded fault injection turns a corrupted run into a structured
diagnostic instead of a wrong profile (here the corrupted index
register traps in the interpreter; silent corruptions are caught by
the expected-output self-check instead):

  $ asipfb simulate fir --fault-seed 42 --fault-reg-rate 0.01
  asipfb: error[simulation] runtime error: load out of bounds: input[1048579] (phase=interp)
  [1]

Invalid fault rates and detection lengths are user errors, not
internal errors (exit 1, one line, no backtrace):

  $ asipfb simulate fir --fault-seed 1 --fault-reg-rate 2.0
  asipfb: Fault.create: reg_corrupt_rate outside [0,1]
  [1]

  $ asipfb detect fir -l 1
  asipfb: Detect.run: length must be >= 2
  [1]

Fault flags without a seed are rejected rather than silently ignored:

  $ asipfb simulate fir --fault-reg-rate 0.01
  asipfb: fault injection flags require --fault-seed
  [1]

An unwritable --diag-json path is likewise a one-line error:

  $ asipfb report --keep-going --diag-json /nonexistent-dir/d.json > /dev/null
  asipfb: /nonexistent-dir/d.json: No such file or directory
  [1]
