(* IR-layer tests: instruction accessors, registers, and the validator's
   rejection of malformed programs. *)

module Types = Asipfb_ir.Types
module Reg = Asipfb_ir.Reg
module Label = Asipfb_ir.Label
module Instr = Asipfb_ir.Instr
module Builder = Asipfb_ir.Builder
module Func = Asipfb_ir.Func
module Prog = Asipfb_ir.Prog
module Validate = Asipfb_ir.Validate

let reg id ty name = Reg.make ~id ~ty ~name

let test_reg_identity () =
  let a = reg 1 Types.Int "x" and b = reg 1 Types.Float "y" in
  Alcotest.(check bool) "identity is id only" true (Reg.equal a b);
  let c = Reg.with_id a ~id:2 in
  Alcotest.(check bool) "with_id changes identity" false (Reg.equal a c);
  Alcotest.(check string) "name kept" "x" (Reg.name c)

let test_instr_def_uses () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let y = Builder.fresh_reg b ~ty:Types.Int ~name:"y" in
  let z = Builder.fresh_reg b ~ty:Types.Int ~name:"z" in
  let i = Builder.binop b Types.Add z (Instr.Reg x) (Instr.Reg y) in
  Alcotest.(check bool) "def" true
    (match Instr.def i with Some d -> Reg.equal d z | None -> false);
  Alcotest.(check int) "uses" 2 (List.length (Instr.uses i));
  let st = Builder.store b Types.Int "m" (Instr.Reg x) (Instr.Reg y) in
  Alcotest.(check bool) "store has no def" true (Instr.def st = None);
  Alcotest.(check bool) "store writes memory" true
    (Instr.writes_memory st = Some "m");
  let ld = Builder.load b Types.Int x "m" (Instr.Imm_int 0) in
  Alcotest.(check bool) "load reads memory" true
    (Instr.reads_memory ld = Some "m");
  let same_use = Builder.binop b Types.Add z (Instr.Reg x) (Instr.Reg x) in
  Alcotest.(check int) "duplicate uses preserved" 2
    (List.length (Instr.uses same_use))

let test_map_operands_preserves_opid () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let i = Builder.binop b Types.Add x (Instr.Imm_int 1) (Instr.Imm_int 2) in
  let j = Instr.map_operands (fun _ -> Instr.Imm_int 9) i in
  Alcotest.(check int) "opid preserved" (Instr.opid i) (Instr.opid j);
  Alcotest.(check bool) "operands rewritten" true
    (Instr.operands j = [ Instr.Imm_int 9; Instr.Imm_int 9 ])

let test_branch_targets () =
  let b = Builder.create () in
  let l = Builder.fresh_label b ~hint:"l" in
  Alcotest.(check int) "jump targets" 1
    (List.length (Instr.branch_targets (Builder.jump b l)));
  Alcotest.(check int) "ret targets" 0
    (List.length (Instr.branch_targets (Builder.ret b None)))

(* --- validator ---------------------------------------------------------- *)

let simple_func b ~name body =
  Func.make ~name ~params:[] ~ret_ty:None ~body:(body @ [ Builder.ret b None ])

let make_prog ?(regions = []) funcs =
  Prog.make ~funcs ~regions ~entry:"main"

let has_error_containing errs fragment =
  List.exists
    (fun (e : Validate.error) ->
      let msg = Format.asprintf "%a" Validate.pp_error e in
      let nh = String.length msg and nn = String.length fragment in
      let rec go i =
        if i + nn > nh then false
        else if String.sub msg i nn = fragment then true
        else go (i + 1)
      in
      go 0)
    errs

let test_validate_ok () =
  let b = Builder.create () in
  let p = make_prog [ simple_func b ~name:"main" [] ] in
  Alcotest.(check int) "clean program" 0 (List.length (Validate.check p))

let test_validate_missing_entry () =
  let b = Builder.create () in
  let p = make_prog [ simple_func b ~name:"other" [] ] in
  Alcotest.(check bool) "entry missing" true
    (has_error_containing (Validate.check p) "entry function")

let test_validate_unmarked_label () =
  let b = Builder.create () in
  let l = Builder.fresh_label b ~hint:"nowhere" in
  let f =
    Func.make ~name:"main" ~params:[] ~ret_ty:None
      ~body:[ Builder.jump b l ]
  in
  Alcotest.(check bool) "branch to unmarked label" true
    (has_error_containing (Validate.check (make_prog [ f ])) "unmarked label")

let test_validate_duplicate_opid () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let i = Builder.mov b x (Instr.Imm_int 1) in
  let dup = Instr.make ~opid:(Instr.opid i) (Instr.kind i) in
  let f =
    Func.make ~name:"main" ~params:[] ~ret_ty:None
      ~body:[ i; dup; Builder.ret b None ]
  in
  Alcotest.(check bool) "duplicate opid" true
    (has_error_containing (Validate.check (make_prog [ f ])) "duplicate opid")

let test_validate_type_mismatch () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Float ~name:"x" in
  let i = Instr.make ~opid:100 (Instr.Binop (Types.Add, x, Instr.Imm_int 1, Instr.Imm_int 2)) in
  let f =
    Func.make ~name:"main" ~params:[] ~ret_ty:None
      ~body:[ i; Builder.ret b None ]
  in
  Alcotest.(check bool) "destination type mismatch" true
    (has_error_containing
       (Validate.check (make_prog [ f ]))
       "destination type mismatch")

let test_validate_unterminated () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let f =
    Func.make ~name:"main" ~params:[] ~ret_ty:None
      ~body:[ Builder.mov b x (Instr.Imm_int 1) ]
  in
  Alcotest.(check bool) "missing terminator" true
    (has_error_containing
       (Validate.check (make_prog [ f ]))
       "end in a jump or return")

let test_validate_unreachable_code () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let f =
    Func.make ~name:"main" ~params:[] ~ret_ty:None
      ~body:[ Builder.ret b None; Builder.mov b x (Instr.Imm_int 1);
              Builder.ret b None ]
  in
  Alcotest.(check bool) "unreachable after ret" true
    (has_error_containing (Validate.check (make_prog [ f ])) "unreachable")

let test_validate_undeclared_region () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let f =
    simple_func b ~name:"main" [ Builder.load b Types.Int x "ghost" (Instr.Imm_int 0) ]
  in
  Alcotest.(check bool) "undeclared region" true
    (has_error_containing (Validate.check (make_prog [ f ])) "undeclared region")

let test_validate_bad_call () =
  let b = Builder.create () in
  let f = simple_func b ~name:"main" [ Builder.call b None "nope" [] ] in
  Alcotest.(check bool) "undefined callee" true
    (has_error_containing (Validate.check (make_prog [ f ])) "undefined function")

let test_validate_arity () =
  let b = Builder.create () in
  let callee =
    Func.make ~name:"callee"
      ~params:[ Builder.fresh_reg b ~ty:Types.Int ~name:"a" ]
      ~ret_ty:None
      ~body:[ Builder.ret b None ]
  in
  let f = simple_func b ~name:"main" [ Builder.call b None "callee" [] ] in
  Alcotest.(check bool) "arity mismatch" true
    (has_error_containing (Validate.check (make_prog [ f; callee ])) "expects 1")

let test_validate_bad_region_size () =
  let b = Builder.create () in
  let p =
    Prog.make
      ~funcs:[ simple_func b ~name:"main" [] ]
      ~regions:[ { Prog.region_name = "r"; elt_ty = Types.Int; size = 0 } ]
      ~entry:"main"
  in
  Alcotest.(check bool) "zero-size region" true
    (has_error_containing (Validate.check p) "size 0")

let test_check_exn () =
  let b = Builder.create () in
  let good = make_prog [ simple_func b ~name:"main" [] ] in
  Validate.check_exn good;
  let bad = make_prog [] in
  (match Validate.check_exn bad with
  | exception Asipfb_diag.Diag.Diag_error d ->
      Alcotest.(check string)
        "verification stage" "verification"
        (Asipfb_diag.Diag.stage_to_string d.stage)
  | () -> Alcotest.fail "expected Diag_error on empty program");
  (* check_diags carries the same findings as check, as diagnostics. *)
  Alcotest.(check int)
    "check_diags arity"
    (List.length (Validate.check bad))
    (List.length (Validate.check_diags bad))

let suite =
  [
    ( "ir",
      [
        Alcotest.test_case "register identity" `Quick test_reg_identity;
        Alcotest.test_case "instr def/uses" `Quick test_instr_def_uses;
        Alcotest.test_case "map_operands keeps opid" `Quick
          test_map_operands_preserves_opid;
        Alcotest.test_case "branch targets" `Quick test_branch_targets;
      ] );
    ( "ir.validate",
      [
        Alcotest.test_case "accepts clean program" `Quick test_validate_ok;
        Alcotest.test_case "missing entry" `Quick test_validate_missing_entry;
        Alcotest.test_case "unmarked label" `Quick test_validate_unmarked_label;
        Alcotest.test_case "duplicate opid" `Quick test_validate_duplicate_opid;
        Alcotest.test_case "type mismatch" `Quick test_validate_type_mismatch;
        Alcotest.test_case "unterminated body" `Quick test_validate_unterminated;
        Alcotest.test_case "unreachable code" `Quick
          test_validate_unreachable_code;
        Alcotest.test_case "undeclared region" `Quick
          test_validate_undeclared_region;
        Alcotest.test_case "undefined callee" `Quick test_validate_bad_call;
        Alcotest.test_case "call arity" `Quick test_validate_arity;
        Alcotest.test_case "region size" `Quick test_validate_bad_region_size;
        Alcotest.test_case "check_exn" `Quick test_check_exn;
      ] );
  ]
