(* Static-analysis subsystem: IR dataflow checks, mini-C lint, and the
   schedule-legality prover. *)

module Builder = Asipfb_ir.Builder
module Instr = Asipfb_ir.Instr
module Func = Asipfb_ir.Func
module Prog = Asipfb_ir.Prog
module Types = Asipfb_ir.Types
module Reg = Asipfb_ir.Reg
module Lower = Asipfb_frontend.Lower
module Schedule = Asipfb_sched.Schedule
module Opt_level = Asipfb_sched.Opt_level
module Ddg = Asipfb_sched.Ddg
module Ircheck = Asipfb_verify.Ircheck
module Lint = Asipfb_verify.Lint
module Legality = Asipfb_verify.Legality
module Verify = Asipfb_verify.Verify
module Diag = Asipfb_diag.Diag

let rules ds =
  List.filter_map (fun (d : Diag.t) -> List.assoc_opt "check" d.context) ds

(* --- IR dataflow checks -------------------------------------------------- *)

let test_uninit_on_one_path () =
  let b = Builder.create () in
  let p = Builder.fresh_reg b ~ty:Types.Int ~name:"p" in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let y = Builder.fresh_reg b ~ty:Types.Int ~name:"y" in
  let l = Builder.fresh_label b ~hint:"join" in
  let body =
    [
      Builder.cond_jump b (Instr.Reg p) l;
      Builder.mov b x (Instr.Imm_int 1);
      Builder.label_mark b l;
      Builder.mov b y (Instr.Reg x);
      Builder.ret b (Some (Instr.Reg y));
    ]
  in
  let f =
    Func.make ~name:"f" ~params:[ p ] ~ret_ty:(Some Types.Int) ~body
  in
  let ds = Ircheck.check_func f in
  Alcotest.(check (list string))
    "one maybe-uninitialized finding" [ "maybe-uninitialized" ] (rules ds);
  Alcotest.(check (option string))
    "names x" (Some "x.1")
    (List.assoc_opt "register" (List.hd ds).context)

let test_init_on_all_paths_clean () =
  let b = Builder.create () in
  let p = Builder.fresh_reg b ~ty:Types.Int ~name:"p" in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let l_else = Builder.fresh_label b ~hint:"else" in
  let l_join = Builder.fresh_label b ~hint:"join" in
  let body =
    [
      Builder.cond_jump b (Instr.Reg p) l_else;
      Builder.mov b x (Instr.Imm_int 1);
      Builder.jump b l_join;
      Builder.label_mark b l_else;
      Builder.mov b x (Instr.Imm_int 2);
      Builder.label_mark b l_join;
      Builder.ret b (Some (Instr.Reg x));
    ]
  in
  let f =
    Func.make ~name:"f" ~params:[ p ] ~ret_ty:(Some Types.Int) ~body
  in
  Alcotest.(check (list string)) "clean" [] (rules (Ircheck.check_func f))

let test_dead_store () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let first = Builder.mov b x (Instr.Imm_int 1) in
  let body =
    [ first; Builder.mov b x (Instr.Imm_int 2);
      Builder.ret b (Some (Instr.Reg x)) ]
  in
  let f = Func.make ~name:"f" ~params:[] ~ret_ty:(Some Types.Int) ~body in
  let ds = Ircheck.check_func f in
  Alcotest.(check (list string)) "one dead store" [ "dead-store" ] (rules ds);
  Alcotest.(check (option string))
    "names the first mov" (Some (string_of_int (Instr.opid first)))
    (List.assoc_opt "opid" (List.hd ds).context)

(* The dead-store finding carries the overwriting definition's opid as a
   "killed-by" witness — same-block and across a branch. *)
let test_dead_store_killed_by () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let first = Builder.mov b x (Instr.Imm_int 1) in
  let killer = Builder.mov b x (Instr.Imm_int 2) in
  let body = [ first; killer; Builder.ret b (Some (Instr.Reg x)) ] in
  let f = Func.make ~name:"f" ~params:[] ~ret_ty:(Some Types.Int) ~body in
  (match Ircheck.check_func f with
  | [ d ] ->
      Alcotest.(check (option string))
        "same-block witness"
        (Some (string_of_int (Instr.opid killer)))
        (List.assoc_opt "killed-by" d.context)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds));
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let l = Builder.fresh_label b ~hint:"next" in
  let first = Builder.mov b x (Instr.Imm_int 1) in
  let killer = Builder.mov b x (Instr.Imm_int 2) in
  let body =
    [ first; Builder.jump b l; Builder.label_mark b l; killer;
      Builder.ret b (Some (Instr.Reg x)) ]
  in
  let f = Func.make ~name:"f" ~params:[] ~ret_ty:(Some Types.Int) ~body in
  match Ircheck.check_func f with
  | [ d ] ->
      Alcotest.(check (option string))
        "cross-block witness"
        (Some (string_of_int (Instr.opid killer)))
        (List.assoc_opt "killed-by" d.context)
  | ds -> Alcotest.failf "expected one finding, got %d" (List.length ds)

let test_unreachable_block () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b ~ty:Types.Int ~name:"x" in
  let l = Builder.fresh_label b ~hint:"orphan" in
  let body =
    [
      Builder.ret b None;
      Builder.label_mark b l;
      Builder.mov b x (Instr.Imm_int 1);
      Builder.ret b None;
    ]
  in
  let f = Func.make ~name:"f" ~params:[] ~ret_ty:None ~body in
  Alcotest.(check bool)
    "unreachable block reported" true
    (List.mem "unreachable-block" (rules (Ircheck.check_func f)))

let test_suite_ir_clean () =
  List.iter
    (fun (b : Asipfb_bench_suite.Benchmark.t) ->
      let prog = Asipfb_bench_suite.Benchmark.compile b in
      Alcotest.(check (list string))
        (b.name ^ " IR checks clean") []
        (rules (Verify.check_ir prog)))
    Asipfb_bench_suite.Registry.all

(* --- mini-C lint ---------------------------------------------------------- *)

let lint_rules src = rules (Verify.lint_source src)

let test_lint_unused_variable () =
  Alcotest.(check (list string))
    "unused local" [ "unused-variable" ]
    (lint_rules "int out[1]; void main() { int x = 3; out[0] = 1; }")

let test_lint_unused_parameter () =
  Alcotest.(check (list string))
    "unused parameter" [ "unused-parameter" ]
    (lint_rules
       "int out[1]; int f(int a, int b) { return a; } void main() { out[0] \
        = f(1, 2); }")

let test_lint_const_oob () =
  let ds =
    Verify.lint_source "int a[4]; void main() { a[0] = 1; a[5] = a[0]; }"
  in
  Alcotest.(check (list string))
    "constant index out of bounds" [ "const-out-of-bounds" ] (rules ds);
  Alcotest.(check (option string))
    "names the index" (Some "5")
    (List.assoc_opt "index" (List.hd ds).context)

let test_lint_constant_condition () =
  Alcotest.(check (list string))
    "constant if condition" [ "constant-condition" ]
    (lint_rules
       "int out[1]; void main() { if (1) out[0] = 1; else out[0] = 2; }")

let test_lint_loop_condition_exempt () =
  (* while (1) desugars to a literal condition and is idiomatic. *)
  Alcotest.(check (list string))
    "constant loop condition allowed" []
    (lint_rules
       "int out[1]; void main() { int i = 0; while (1) { i = i + 1; if (i \
        > 3) break; } out[0] = i; }")

let test_lint_self_assignment () =
  let ds =
    Verify.lint_source
      "int out[1]; void main() { int x = 3; x = x; out[0] = x; }"
  in
  Alcotest.(check (list string))
    "self-assignment" [ "self-assignment" ] (rules ds);
  Alcotest.(check (option string))
    "names the variable" (Some "x")
    (List.assoc_opt "variable" (List.hd ds).context)

let test_lint_param_shadow () =
  let ds =
    Verify.lint_source
      "int out[1]; int f(int a) { if (a > 0) { int a = 2; return a; } \
       return 0; } void main() { out[0] = f(1); }"
  in
  Alcotest.(check (list string))
    "parameter shadowed" [ "parameter-shadowed" ] (rules ds);
  Alcotest.(check (option string))
    "names the parameter" (Some "a")
    (List.assoc_opt "parameter" (List.hd ds).context)

let test_lint_missing_return () =
  Alcotest.(check (list string))
    "missing return on a path" [ "missing-return" ]
    (lint_rules
       "int out[1]; int f(int a) { if (a > 0) { return 1; } } void main() \
        { out[0] = f(1); }")

let test_lint_return_on_all_paths_clean () =
  Alcotest.(check (list string))
    "both branches return" []
    (lint_rules
       "int out[1]; int f(int a) { if (a > 0) { return 1; } else { return \
        2; } } void main() { out[0] = f(1); }")

let test_lint_frontend_error_is_diag () =
  match Verify.lint_source "int main(" with
  | [ d ] ->
      Alcotest.(check string)
        "frontend stage" "frontend" (Diag.stage_to_string d.stage)
  | ds ->
      Alcotest.failf "expected one frontend diagnostic, got %d"
        (List.length ds)

let test_suite_lint_clean () =
  List.iter
    (fun (b : Asipfb_bench_suite.Benchmark.t) ->
      Alcotest.(check (list string))
        (b.name ^ " lint clean") [] (lint_rules b.source))
    Asipfb_bench_suite.Registry.all

(* --- schedule legality ---------------------------------------------------- *)

let test_all_schedules_legal () =
  List.iter
    (fun (b : Asipfb_bench_suite.Benchmark.t) ->
      let prog = Asipfb_bench_suite.Benchmark.compile b in
      List.iter
        (fun level ->
          let sched = Schedule.optimize ~level prog in
          match Legality.check ~original:prog sched with
          | Legality.Legal -> ()
          | Legality.Violation (v :: _) ->
              Alcotest.failf "%s at %s: (%d, %d, %s): %s" b.name
                (Opt_level.to_string level) v.before v.after
                (Legality.string_of_kind v.vkind)
                v.reason
          | Legality.Violation [] -> assert false)
        Opt_level.all)
    Asipfb_bench_suite.Registry.all

(* Swap the first adjacent flow-dependent instruction pair in main, then
   check the prover names exactly that pair. *)
let test_corrupted_schedule_flagged () =
  let b = List.hd Asipfb_bench_suite.Registry.all in
  let prog = Asipfb_bench_suite.Benchmark.compile b in
  let swapped = ref None in
  let rec swap_first = function
    | a :: y :: rest
      when !swapped = None
           && (match Instr.def a with
              | Some d -> List.exists (Reg.equal d) (Instr.uses y)
              | None -> false)
           && (not (Instr.is_control a))
           && not (Instr.is_control y) ->
        swapped := Some (Instr.opid a, Instr.opid y);
        y :: a :: rest
    | x :: rest -> x :: swap_first rest
    | [] -> []
  in
  (* Corrupt the first function that has an adjacent dependent pair. *)
  let funcs =
    List.map
      (fun (g : Func.t) ->
        if !swapped = None then Func.with_body g (swap_first g.body) else g)
      prog.funcs
  in
  let before, after =
    match !swapped with
    | Some pair -> pair
    | None -> Alcotest.fail "no dependent pair to corrupt"
  in
  let corrupted = { prog with Prog.funcs = funcs } in
  let sched = Schedule.optimize ~level:Opt_level.O0 corrupted in
  match Legality.check ~original:prog sched with
  | Legality.Legal -> Alcotest.fail "corrupted schedule accepted as legal"
  | Legality.Violation vs ->
      Alcotest.(check bool)
        (Printf.sprintf "names the swapped pair (%d, %d, flow)" before after)
        true
        (List.exists
           (fun (v : Legality.violation) ->
             v.before = before && v.after = after && v.vkind = Ddg.Flow)
           vs);
      (* Violations render as error diagnostics. *)
      List.iter
        (fun d -> Alcotest.(check bool) "error severity" true (Diag.is_error d))
        (Legality.to_diags (Legality.Violation vs))

let prop_random_schedules_legal =
  QCheck2.Test.make ~name:"optimized random programs verify legal" ~count:30
    Gen_minic.gen_program (fun src ->
      let prog = Lower.compile src ~entry:"main" in
      List.for_all
        (fun level ->
          Legality.check ~original:prog (Schedule.optimize ~level prog)
          = Legality.Legal)
        Opt_level.all)

(* --- engine integration --------------------------------------------------- *)

let test_pipeline_verify_checkpoint () =
  let b = List.hd Asipfb_bench_suite.Registry.all in
  (match Asipfb.Pipeline.analyze_result ~verify:`Full b with
  | Ok a -> Alcotest.(check int) "no findings" 0 (List.length a.verify)
  | Error d -> Alcotest.fail (Diag.to_string d));
  match Asipfb.Pipeline.analyze_result b with
  | Ok a -> Alcotest.(check int) "off by default" 0 (List.length a.verify)
  | Error d -> Alcotest.fail (Diag.to_string d)

let test_engine_verify_cached () =
  let engine = Asipfb_engine.Engine.create ~jobs:1 ~cache:true () in
  let bs = [ List.hd Asipfb_bench_suite.Registry.all ] in
  ignore (Asipfb_engine.Engine.analyze_all engine ~verify:`Full bs);
  let cold = (Asipfb_engine.Engine.stats engine).verify in
  ignore (Asipfb_engine.Engine.analyze_all engine ~verify:`Full bs);
  let warm = (Asipfb_engine.Engine.stats engine).verify in
  Alcotest.(check int) "cold run misses" 4 cold.misses;
  Alcotest.(check int) "warm run hits" (cold.hits + 4) warm.hits

(* `Tv adds one refinement payload per level on top of `Full's 1 IR +
   3 legality payloads: 7 misses cold, 7 hits warm. *)
let test_engine_tv_cached () =
  let engine = Asipfb_engine.Engine.create ~jobs:1 ~cache:true () in
  let bs = [ List.hd Asipfb_bench_suite.Registry.all ] in
  ignore (Asipfb_engine.Engine.analyze_all engine ~verify:`Tv bs);
  let cold = (Asipfb_engine.Engine.stats engine).verify in
  ignore (Asipfb_engine.Engine.analyze_all engine ~verify:`Tv bs);
  let warm = (Asipfb_engine.Engine.stats engine).verify in
  Alcotest.(check int) "cold run misses" 7 cold.misses;
  Alcotest.(check int) "warm run hits" (cold.hits + 7) warm.hits;
  (* A clean benchmark proves refinement at every level: no findings. *)
  match Asipfb_engine.Engine.analyze_all engine ~verify:`Tv bs with
  | [ (_, Ok a) ] -> Alcotest.(check int) "no findings" 0 (List.length a.verify)
  | _ -> Alcotest.fail "analyze_all shape"

let suite =
  [
    ( "verify.ircheck",
      [
        Alcotest.test_case "uninit on one path" `Quick test_uninit_on_one_path;
        Alcotest.test_case "init on all paths clean" `Quick
          test_init_on_all_paths_clean;
        Alcotest.test_case "dead store" `Quick test_dead_store;
        Alcotest.test_case "dead store killed-by witness" `Quick
          test_dead_store_killed_by;
        Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
        Alcotest.test_case "suite IR clean" `Quick test_suite_ir_clean;
      ] );
    ( "verify.lint",
      [
        Alcotest.test_case "unused variable" `Quick test_lint_unused_variable;
        Alcotest.test_case "unused parameter" `Quick
          test_lint_unused_parameter;
        Alcotest.test_case "const out of bounds" `Quick test_lint_const_oob;
        Alcotest.test_case "constant condition" `Quick
          test_lint_constant_condition;
        Alcotest.test_case "loop condition exempt" `Quick
          test_lint_loop_condition_exempt;
        Alcotest.test_case "self assignment" `Quick
          test_lint_self_assignment;
        Alcotest.test_case "parameter shadowed" `Quick
          test_lint_param_shadow;
        Alcotest.test_case "missing return" `Quick test_lint_missing_return;
        Alcotest.test_case "all paths return" `Quick
          test_lint_return_on_all_paths_clean;
        Alcotest.test_case "frontend error as diag" `Quick
          test_lint_frontend_error_is_diag;
        Alcotest.test_case "suite lint clean" `Quick test_suite_lint_clean;
      ] );
    ( "verify.legality",
      [
        Alcotest.test_case "all schedules legal" `Quick
          test_all_schedules_legal;
        Alcotest.test_case "corrupted schedule flagged" `Quick
          test_corrupted_schedule_flagged;
        QCheck_alcotest.to_alcotest prop_random_schedules_legal;
      ] );
    ( "verify.engine",
      [
        Alcotest.test_case "pipeline checkpoint" `Quick
          test_pipeline_verify_checkpoint;
        Alcotest.test_case "verify results cached" `Quick
          test_engine_verify_cached;
        Alcotest.test_case "tv results cached" `Quick test_engine_tv_cached;
      ] );
  ]
