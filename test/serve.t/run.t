Analysis-service error paths: every failure is a clean one-line
"asipfb:" message with exit 1 — no backtraces, no stale socket files.

A client pointed at a socket nobody serves:

  $ asipfb client ping --socket no-daemon.sock
  asipfb: cannot connect to no-daemon.sock: No such file or directory (is the daemon running?)
  [1]

The daemon refuses to replace a path that is not a socket (it will
never delete a user's regular file):

  $ touch not-a-socket
  $ asipfb serve --socket not-a-socket
  asipfb: refusing to replace not-a-socket: not a socket
  [1]
  $ test -f not-a-socket

A full serve/shutdown cycle answers a ping and removes the socket
file on exit (stale-socket takeover is exercised by
scripts/serve_smoke.sh, which kills a daemon with SIGKILL first):

  $ asipfb serve --socket live.sock --workers 1 2>/dev/null &
  > SERVE_PID=$!
  > for _ in $(seq 100); do test -S live.sock && break; sleep 0.1; done
  > asipfb client ping --socket live.sock
  > asipfb client shutdown --socket live.sock
  > wait $SERVE_PID
  pong
  stopping
  $ test -e live.sock
  [1]
