(* Simulator tests: value model, memory, operator semantics, profiles. *)

module Types = Asipfb_ir.Types
module Value = Asipfb_sim.Value
module Memory = Asipfb_sim.Memory
module Profile = Asipfb_sim.Profile
module Interp = Asipfb_sim.Interp
module Lower = Asipfb_frontend.Lower

let test_value_basics () =
  Alcotest.(check bool) "ty int" true (Value.ty (Value.Vint 3) = Types.Int);
  Alcotest.(check int) "as_int" 3 (Value.as_int (Value.Vint 3));
  Alcotest.(check (float 0.0)) "as_float" 2.5
    (Value.as_float (Value.Vfloat 2.5));
  (match Value.as_int (Value.Vfloat 1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "as_int on float must raise");
  Alcotest.(check bool) "zero int" true (Value.equal (Value.zero Types.Int) (Value.Vint 0));
  Alcotest.(check bool) "close exact ints" true
    (Value.close (Value.Vint 5) (Value.Vint 5));
  Alcotest.(check bool) "close floats within eps" true
    (Value.close (Value.Vfloat 1.0) (Value.Vfloat (1.0 +. 1e-12)));
  Alcotest.(check bool) "not close across types" false
    (Value.close (Value.Vint 0) (Value.Vfloat 0.0))

let test_eval_binop () =
  let vi n = Value.Vint n and vf x = Value.Vfloat x in
  Alcotest.(check int) "add" 7 (Value.as_int (Interp.eval_binop Types.Add (vi 3) (vi 4)));
  Alcotest.(check int) "sub" (-1) (Value.as_int (Interp.eval_binop Types.Sub (vi 3) (vi 4)));
  Alcotest.(check int) "mul" 12 (Value.as_int (Interp.eval_binop Types.Mul (vi 3) (vi 4)));
  Alcotest.(check int) "div" 3 (Value.as_int (Interp.eval_binop Types.Div (vi 13) (vi 4)));
  Alcotest.(check int) "rem" 1 (Value.as_int (Interp.eval_binop Types.Rem (vi 13) (vi 4)));
  Alcotest.(check int) "and" 4 (Value.as_int (Interp.eval_binop Types.And (vi 6) (vi 12)));
  Alcotest.(check int) "or" 14 (Value.as_int (Interp.eval_binop Types.Or (vi 6) (vi 12)));
  Alcotest.(check int) "xor" 10 (Value.as_int (Interp.eval_binop Types.Xor (vi 6) (vi 12)));
  Alcotest.(check int) "shl" 24 (Value.as_int (Interp.eval_binop Types.Shl (vi 3) (vi 3)));
  Alcotest.(check int) "shr arithmetic" (-2)
    (Value.as_int (Interp.eval_binop Types.Shr (vi (-8)) (vi 2)));
  Alcotest.(check (float 1e-9)) "fadd" 3.75
    (Value.as_float (Interp.eval_binop Types.Fadd (vf 1.25) (vf 2.5)));
  Alcotest.(check (float 1e-9)) "fdiv" 0.5
    (Value.as_float (Interp.eval_binop Types.Fdiv (vf 1.0) (vf 2.0)))

let test_eval_binop_traps () =
  let vi n = Value.Vint n in
  let expect_trap f =
    match f () with
    | exception Interp.Runtime_error _ -> ()
    | _ -> Alcotest.fail "expected runtime error"
  in
  expect_trap (fun () -> Interp.eval_binop Types.Div (vi 1) (vi 0));
  expect_trap (fun () -> Interp.eval_binop Types.Rem (vi 1) (vi 0));
  expect_trap (fun () -> Interp.eval_binop Types.Shl (vi 1) (vi 70));
  expect_trap (fun () -> Interp.eval_binop Types.Shr (vi 1) (vi (-1)));
  expect_trap (fun () ->
      Interp.eval_binop Types.Fdiv (Value.Vfloat 1.0) (Value.Vfloat 0.0))

let test_eval_unop () =
  Alcotest.(check int) "neg" (-3) (Value.as_int (Interp.eval_unop Types.Neg (Value.Vint 3)));
  Alcotest.(check int) "not" (-1) (Value.as_int (Interp.eval_unop Types.Not (Value.Vint 0)));
  Alcotest.(check (float 1e-9)) "fneg" (-2.0)
    (Value.as_float (Interp.eval_unop Types.Fneg (Value.Vfloat 2.0)));
  Alcotest.(check (float 1e-9)) "itof" 5.0
    (Value.as_float (Interp.eval_unop Types.Int_to_float (Value.Vint 5)));
  Alcotest.(check int) "ftoi truncates" 5
    (Value.as_int (Interp.eval_unop Types.Float_to_int (Value.Vfloat 5.9)));
  Alcotest.(check (float 1e-9)) "sqrt" 3.0
    (Value.as_float (Interp.eval_unop Types.Sqrt (Value.Vfloat 9.0)));
  match Interp.eval_unop Types.Sqrt (Value.Vfloat (-1.0)) with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "sqrt(-1) must trap"

let test_memory () =
  let prog =
    Lower.compile "int a[4]; float f[2]; void main() { }" ~entry:"main"
  in
  let m = Memory.create prog in
  Alcotest.(check int) "zero initialized" 0
    (Value.as_int (Memory.load m "a" 0));
  Memory.store m "a" 3 (Value.Vint 9);
  Alcotest.(check int) "store/load" 9 (Value.as_int (Memory.load m "a" 3));
  (match Memory.load m "a" 4 with
  | exception Memory.Bounds ("a", 4) -> ()
  | _ -> Alcotest.fail "bounds check");
  (match Memory.store m "a" 0 (Value.Vfloat 1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type check on store");
  (match Memory.seed m "a" (Array.make 5 (Value.Vint 0)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seed length check");
  Memory.seed m "f" [| Value.Vfloat 1.5 |];
  Alcotest.(check (float 0.0)) "seeded" 1.5
    (Value.as_float (Memory.load m "f" 0));
  Alcotest.(check int) "dump is a copy" 2 (Array.length (Memory.dump m "f"))

let test_profile () =
  let p = Profile.create () in
  Profile.bump p ~opid:3;
  Profile.bump p ~opid:3;
  Profile.add p ~opid:7 ~count:5;
  Alcotest.(check int) "count" 2 (Profile.count p ~opid:3);
  Alcotest.(check int) "unknown is 0" 0 (Profile.count p ~opid:99);
  Alcotest.(check int) "total" 7 (Profile.total p);
  let q = Profile.of_alist [ (3, 1); (8, 2) ] in
  let m = Profile.merge p q in
  Alcotest.(check int) "merge sums" 3 (Profile.count m ~opid:3);
  Alcotest.(check int) "merge keeps both" 2 (Profile.count m ~opid:8);
  Alcotest.(check int) "merge total" 10 (Profile.total m);
  let s = Profile.scale m 0.5 in
  Alcotest.(check int) "scale rounds half up" 2 (Profile.count s ~opid:3);
  Alcotest.(check int) "scale of even count" 1 (Profile.count s ~opid:8);
  Alcotest.(check bool) "alist sorted" true
    (let l = Profile.to_alist m in
     l = List.sort (fun (a, _) (b, _) -> compare a b) l)

let test_profile_counts_match_execution () =
  let src =
    "int out[1]; void main() { int i; int s = 0; for (i = 0; i < 10; i++) s += i; out[0] = s; }"
  in
  let prog = Lower.compile src ~entry:"main" in
  let o = Interp.run prog in
  Alcotest.(check int) "profile total = executed" o.instrs_executed
    (Profile.total o.profile);
  (* The loop-body add executes exactly 10 times. *)
  let f = Asipfb_ir.Prog.find_func prog "main" in
  let body_adds =
    List.filter
      (fun i ->
        match Asipfb_ir.Instr.kind i with
        | Asipfb_ir.Instr.Binop (Types.Add, d, _, _) ->
            Asipfb_ir.Reg.name d = "s"
        | _ -> false)
      f.body
  in
  match body_adds with
  | [ add ] ->
      Alcotest.(check int) "accumulator add runs 10 times" 10
        (Profile.count o.profile ~opid:(Asipfb_ir.Instr.opid add))
  | _ -> Alcotest.fail "expected exactly one accumulator add"

let test_call_stack_depth () =
  let src =
    "int out[1]; int f3(int x) { return x + 3; } int f2(int x) { return f3(x) * 2; } int f1(int x) { return f2(x) - 1; } void main() { out[0] = f1(5); }"
  in
  let o = Interp.run (Lower.compile src ~entry:"main") in
  Alcotest.(check int) "nested call result" 15
    (Value.as_int (Asipfb_sim.Memory.load o.memory "out" 0))

let test_uninitialized_register () =
  (* Reading a declared-but-unassigned scalar is a runtime error, not
     silent garbage. *)
  let src = "int out[1]; void main() { int x; out[0] = x; }" in
  match Interp.run (Lower.compile src ~entry:"main") with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected uninitialized-read error"

(* Edge cases with the exact diagnostic asserted, not just "raises": the
   CLI and the resilient pipeline both surface these strings verbatim. *)
let expect_exact_error expected f =
  match f () with
  | exception Interp.Runtime_error msg ->
      Alcotest.(check string) "exact diagnostic" expected msg
  | _ -> Alcotest.fail ("expected runtime error: " ^ expected)

let run_src src = Interp.run (Lower.compile src ~entry:"main")

let test_fuel_exhaustion_diag () =
  (* Fuel exhaustion is structurally distinct from a crash: it raises
     Fuel_exhausted carrying the budget and progress, and its diagnostic
     is tagged kind=timeout for suite-level classification. *)
  match
    Interp.run
      (Lower.compile "void main() { int i = 0; while (1) { i = i + 1; } }"
         ~entry:"main")
      ~fuel:1000
  with
  | exception Interp.Fuel_exhausted { instrs_executed; fuel } -> (
      Alcotest.(check int) "budget recorded" 1000 fuel;
      Alcotest.(check int) "spent the whole budget" 1000 instrs_executed;
      match
        Asipfb_sim.Sim_diag.to_diag
          (Interp.Fuel_exhausted { instrs_executed; fuel })
      with
      | Some d ->
          Alcotest.(check string) "diagnostic message"
            "out of fuel (infinite loop?)" d.message;
          Alcotest.(check (option string)) "tagged as timeout" (Some "timeout")
            (List.assoc_opt "kind" d.context)
      | None -> Alcotest.fail "Sim_diag must convert Fuel_exhausted")
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_division_by_zero_diag () =
  expect_exact_error "integer division by zero" (fun () ->
      run_src "int out[1]; void main() { int z = 0; out[0] = 1 / z; }");
  expect_exact_error "integer remainder by zero" (fun () ->
      run_src "int out[1]; void main() { int z = 0; out[0] = 1 % z; }");
  expect_exact_error "float division by zero" (fun () ->
      run_src
        "float out[1]; void main() { float z = 0.0; out[0] = 1.0 / z; }")

let test_shift_range_diag () =
  expect_exact_error "shift amount 70 out of range" (fun () ->
      run_src "int out[1]; void main() { int s = 70; out[0] = 1 << s; }");
  expect_exact_error "shift amount -1 out of range" (fun () ->
      run_src "int out[1]; void main() { int s = 0 - 1; out[0] = 4 >> s; }")

let test_memory_bounds_diag () =
  (* Raw Memory.Bounds carries the region and index... *)
  let prog = Lower.compile "int a[4]; void main() { }" ~entry:"main" in
  let m = Memory.create prog in
  (match Memory.load m "a" 7 with
  | exception Memory.Bounds ("a", 7) -> ()
  | exception Memory.Bounds (r, i) ->
      Alcotest.fail (Printf.sprintf "wrong bounds payload: %s[%d]" r i)
  | _ -> Alcotest.fail "expected Bounds");
  (* ...and the interpreter renders it with direction and location. *)
  expect_exact_error "load out of bounds: a[9]" (fun () ->
      run_src "int a[4]; int out[1]; void main() { int i = 9; out[0] = a[i]; }");
  expect_exact_error "store out of bounds: a[4]" (fun () ->
      run_src "int a[4]; void main() { int i = 4; a[i] = 1; }")

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "values" `Quick test_value_basics;
        Alcotest.test_case "binop semantics" `Quick test_eval_binop;
        Alcotest.test_case "binop traps" `Quick test_eval_binop_traps;
        Alcotest.test_case "unop semantics" `Quick test_eval_unop;
        Alcotest.test_case "memory" `Quick test_memory;
        Alcotest.test_case "profile" `Quick test_profile;
        Alcotest.test_case "profile matches execution" `Quick
          test_profile_counts_match_execution;
        Alcotest.test_case "nested calls" `Quick test_call_stack_depth;
        Alcotest.test_case "uninitialized read" `Quick
          test_uninitialized_register;
        Alcotest.test_case "fuel exhaustion diagnostic" `Quick
          test_fuel_exhaustion_diag;
        Alcotest.test_case "division by zero diagnostic" `Quick
          test_division_by_zero_diag;
        Alcotest.test_case "shift range diagnostic" `Quick
          test_shift_range_diag;
        Alcotest.test_case "memory bounds diagnostic" `Quick
          test_memory_bounds_diag;
      ] );
  ]
