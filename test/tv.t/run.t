Translation validation CLI: the semantic refinement checker behind
--verify tv and the equiv subcommand.

An unknown verify mode is a one-line error listing every valid mode,
including tv (exit 1, no usage dump):

  $ asipfb report table1 --verify bogus
  asipfb: invalid verify mode "bogus" (expected off, ir, full, or tv)
  [1]

The client-side mode check names tv too:

  $ asipfb client verify fir --mode bogus
  asipfb: invalid verify mode "bogus" (expected ir, full, or tv)
  [1]

A clean benchmark proves refinement at every level:

  $ asipfb equiv fir
  fir O0: refines
  fir O1: refines
  fir O2: refines
  3 pair(s) checked, 0 refinement failure(s)

A deliberately corrupted schedule is rejected with a concrete,
reference-interpreter-confirmed counterexample (exit 1):

  $ asipfb equiv fir -O 2 --corrupt edit-const --seed 3
  asipfb: equiv: 1 refinement failure(s)
  fir O2: FAILS (1 obligation(s))
    filter.b6: [cut-edge] k.22 live into b3: (add 1 r22@b6) vs (add 2 r22@b6) at exit of b6
    counterexample (attempt 1, ref-confirmed): trace index 39: store output[1] = -0.00951924 vs store output[1] = -0.00368944
  1 pair(s) checked, 1 refinement failure(s)
  [1]

An invalid corruption kind lists the mutation vocabulary:

  $ asipfb equiv fir --corrupt frobnicate
  asipfb: invalid corruption "frobnicate" (expected swap-deps, drop-copy, retarget-jump, edit-const)
  [1]
