(* CFG, dominator, loop and liveness tests over compiled mini-C shapes. *)

module Lower = Asipfb_frontend.Lower
module Prog = Asipfb_ir.Prog
module Func = Asipfb_ir.Func
module Instr = Asipfb_ir.Instr
module Reg = Asipfb_ir.Reg
module Cfg = Asipfb_cfg.Cfg
module Dom = Asipfb_cfg.Dom
module Loops = Asipfb_cfg.Loops
module Liveness = Asipfb_cfg.Liveness

let cfg_of ?(func = "main") src =
  Cfg.build (Prog.find_func (Lower.compile src ~entry:"main") func)

let straight = "void main() { int x = 1; int y = x + 2; }"

let diamond =
  "int out[1]; void main() { int x = 1; if (x > 0) out[0] = 1; else out[0] = 2; out[0] = out[0] + 1; }"

let loop = "void main() { int i = 0; while (i < 4) { i++; } }"

let test_straight_line () =
  let cfg = cfg_of straight in
  Alcotest.(check int) "one block" 1 (Array.length cfg.blocks);
  Alcotest.(check (list int)) "no successors" [] cfg.blocks.(0).succs

let test_diamond_structure () =
  let cfg = cfg_of diamond in
  Alcotest.(check int) "four blocks" 4 (Array.length cfg.blocks);
  Alcotest.(check int) "entry has two successors" 2
    (List.length cfg.blocks.(0).succs);
  (* Join block has two predecessors. *)
  let join =
    Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2)
  in
  Alcotest.(check bool) "join exists" true (join.index > 0)

let test_loop_structure () =
  let cfg = cfg_of loop in
  (* init / header / body / exit *)
  Alcotest.(check int) "four blocks" 4 (Array.length cfg.blocks);
  let header =
    Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2)
  in
  Alcotest.(check bool) "header reached from below" true
    (List.exists (fun p -> p > header.index) header.preds)

let test_linearize_roundtrip () =
  List.iter
    (fun src ->
      let p = Lower.compile src ~entry:"main" in
      let f = Prog.find_func p "main" in
      let rebuilt = Func.with_body f (Cfg.linearize (Cfg.build f)) in
      let p' = Prog.update_func p "main" (fun _ -> rebuilt) in
      Asipfb_ir.Validate.check_exn p';
      (* Same non-label instructions in the same order. *)
      let strip f =
        List.filter (fun i -> not (Instr.is_label i)) f.Func.body
        |> List.map Instr.opid
      in
      Alcotest.(check (list int)) "instruction order preserved" (strip f)
        (strip rebuilt);
      (* And the rebuilt program still runs identically. *)
      let o1 = Asipfb_sim.Interp.run p in
      let o2 = Asipfb_sim.Interp.run p' in
      Alcotest.(check int) "same dynamic ops" o1.instrs_executed
        o2.instrs_executed)
    [ straight; diamond; loop ]

let test_dominators_diamond () =
  let cfg = cfg_of diamond in
  let dom = Dom.compute cfg in
  Alcotest.(check bool) "entry dominates all" true
    (Array.for_all (fun (b : Cfg.block) -> Dom.dominates dom 0 b.index)
       cfg.blocks);
  Alcotest.(check bool) "reflexive" true (Dom.dominates dom 1 1);
  (* Neither branch arm dominates the join. *)
  let join =
    (Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2))
      .index
  in
  List.iter
    (fun arm ->
      if arm <> 0 && arm <> join then
        Alcotest.(check bool)
          (Printf.sprintf "block %d does not dominate join" arm)
          false
          (Dom.dominates dom arm join))
    (List.init (Array.length cfg.blocks) Fun.id)

let test_idom () =
  let cfg = cfg_of diamond in
  let dom = Dom.compute cfg in
  Alcotest.(check (option int)) "entry has no idom" None (Dom.idom dom 0);
  let join =
    (Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2))
      .index
  in
  Alcotest.(check (option int)) "join's idom is the branch" (Some 0)
    (Dom.idom dom join)

let test_natural_loops () =
  let cfg = cfg_of loop in
  let dom = Dom.compute cfg in
  let loops = Loops.find cfg dom in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  (match loops with
  | [ l ] ->
      Alcotest.(check int) "two-block body" 2 (List.length l.body);
      Alcotest.(check bool) "header in body" true (List.mem l.header l.body);
      Alcotest.(check bool) "not single block" false (Loops.is_single_block l)
  | _ -> assert false);
  Alcotest.(check int) "innermost keeps it" 1
    (List.length (Loops.innermost loops))

let test_nested_loops () =
  let src =
    "void main() { int i; int j; int s = 0; for (i = 0; i < 3; i++) { for (j = 0; j < 3; j++) { s++; } } }"
  in
  let cfg = cfg_of src in
  let dom = Dom.compute cfg in
  let loops = Loops.find cfg dom in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let inner = Loops.innermost loops in
  Alcotest.(check int) "one innermost" 1 (List.length inner);
  match (inner, loops) with
  | [ i ], [ a; b ] ->
      let outer = if a.header = i.header then b else a in
      Alcotest.(check bool) "inner body inside outer" true
        (List.for_all (fun blk -> List.mem blk outer.body) i.body)
  | _ -> Alcotest.fail "unexpected loop structure"

let test_liveness_loop () =
  let cfg = cfg_of loop in
  let live = Liveness.compute cfg in
  (* The induction variable is live into the loop header. *)
  let header =
    Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2)
  in
  let live_names =
    Liveness.live_in live header.index
    |> Reg.Set.elements
    |> List.map Reg.name
  in
  Alcotest.(check bool) "i live at header" true (List.mem "i" live_names);
  (* Nothing is live at loop exit (no uses after). *)
  let exits =
    Array.to_list cfg.blocks
    |> List.filter (fun (b : Cfg.block) -> b.succs = [])
  in
  List.iter
    (fun (b : Cfg.block) ->
      Alcotest.(check int)
        (Printf.sprintf "nothing live out of block %d" b.index)
        0
        (Reg.Set.cardinal (Liveness.live_out live b.index)))
    exits

let test_live_before () =
  let src = "int out[1]; void main() { int a = 1; int b = 2; out[0] = a + b; }" in
  let cfg = cfg_of src in
  let live = Liveness.compute cfg in
  (* Before the first instruction nothing is live (a and b defined before
     use); before the add both are live. *)
  Alcotest.(check int) "entry has no live-in" 0
    (Reg.Set.cardinal (Liveness.live_before live ~block:0 ~pos:0));
  let n = List.length cfg.blocks.(0).instrs in
  (* position of the add: third instruction (a, b, add, store, ret) *)
  Alcotest.(check bool) "a,b live before add" true
    (Reg.Set.cardinal (Liveness.live_before live ~block:0 ~pos:2) >= 2);
  Alcotest.(check int) "nothing live at end" 0
    (Reg.Set.cardinal (Liveness.live_before live ~block:0 ~pos:n))

(* Direct use of the generic fixpoint framework: a forward may analysis
   ("some path defines the register") must pick up both branches of the
   diamond at the join, while a forward must analysis ("every path
   defines it") keeps only the common defs. *)
let test_dataflow_framework () =
  let module Dataflow = Asipfb_cfg.Dataflow in
  (* Each arm defines its own scalar, so the arms' defs differ. *)
  let cfg =
    cfg_of
      "int out[1]; void main() { int x = 1; if (x > 0) { int a = 2; out[0] \
       = a; } else { int b = 3; out[0] = b; } out[0] = out[0] + x; }"
  in
  let transfer (b : Cfg.block) defined =
    List.fold_left
      (fun acc i ->
        match Instr.def i with Some d -> Reg.Set.add d acc | None -> acc)
      defined b.instrs
  in
  let module May = Dataflow.Make (struct
    type fact = Reg.Set.t

    let direction = `Forward
    let init = Reg.Set.empty
    let merge _ = List.fold_left Reg.Set.union Reg.Set.empty
    let transfer = transfer
    let equal = Reg.Set.equal
  end) in
  let universe =
    Array.fold_left
      (fun acc b -> transfer b acc)
      Reg.Set.empty cfg.blocks
  in
  let module Must = Dataflow.Make (struct
    type fact = Reg.Set.t

    let direction = `Forward
    let init = universe

    let merge (b : Cfg.block) facts =
      let inflow =
        match facts with
        | [] -> universe
        | first :: rest -> List.fold_left Reg.Set.inter first rest
      in
      if b.index = 0 then Reg.Set.empty else inflow

    let transfer = transfer
    let equal = Reg.Set.equal
  end) in
  let may = May.solve cfg and must = Must.solve cfg in
  let join =
    Array.to_list cfg.blocks
    |> List.find (fun (b : Cfg.block) -> List.length b.preds = 2)
  in
  Alcotest.(check bool)
    "must at join within may at join" true
    (Reg.Set.subset must.input.(join.index) may.input.(join.index));
  (* Branch-local defs survive the may merge but not the must merge:
     the two arms define different compiler temporaries. *)
  Alcotest.(check bool)
    "may at join strictly larger" true
    (Reg.Set.cardinal may.input.(join.index)
     > Reg.Set.cardinal must.input.(join.index));
  (* Entry-block defs are on every path, so must keeps them. *)
  Alcotest.(check bool)
    "entry defs definite at join" true
    (Reg.Set.subset
       (transfer cfg.blocks.(0) Reg.Set.empty)
       must.input.(join.index))

let suite =
  [
    ( "cfg",
      [
        Alcotest.test_case "straight line" `Quick test_straight_line;
        Alcotest.test_case "diamond" `Quick test_diamond_structure;
        Alcotest.test_case "loop" `Quick test_loop_structure;
        Alcotest.test_case "linearize round-trip" `Quick
          test_linearize_roundtrip;
      ] );
    ( "cfg.dom",
      [
        Alcotest.test_case "diamond dominators" `Quick test_dominators_diamond;
        Alcotest.test_case "immediate dominators" `Quick test_idom;
      ] );
    ( "cfg.loops",
      [
        Alcotest.test_case "natural loop" `Quick test_natural_loops;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
      ] );
    ( "cfg.liveness",
      [
        Alcotest.test_case "loop liveness" `Quick test_liveness_loop;
        Alcotest.test_case "live_before" `Quick test_live_before;
      ] );
    ( "cfg.dataflow",
      [
        Alcotest.test_case "may/must framework" `Quick
          test_dataflow_framework;
      ] );
  ]
