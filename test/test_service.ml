(* The analysis service: wire-protocol codecs (QCheck round-trips on
   every encoder/decoder), parser totality (malformed frames, depth
   bombs), daemon error paths (structured responses, never a crash),
   in-flight dedup across concurrent clients, and a socket-level
   end-to-end cycle. *)

module Json = Asipfb_service.Json
module Api = Asipfb_service.Api
module Server = Asipfb_service.Server
module Client = Asipfb_service.Client
module Pipeline = Asipfb.Pipeline
module Opt_level = Asipfb_sched.Opt_level
module Detect = Asipfb_chain.Detect
module Coverage = Asipfb_chain.Coverage
module Diag = Asipfb_diag.Diag
module Timing = Asipfb.Timing
module Engine = Asipfb_engine.Engine
module Cache = Asipfb_engine.Cache
module Supervise = Asipfb_supervise.Supervise
module Pool = Asipfb_engine.Pool

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

(* --- generators ---------------------------------------------------------- *)

(* Multiples of 1/8 are exact in binary and short in decimal, so the
   printer's %.12g rendering round-trips them exactly — the codec
   property under test is structure, not float printing. *)
let nice_float = QCheck.Gen.map (fun n -> float_of_int n /. 8.0)
    (QCheck.Gen.int_range (-80000) 80000)

let pos_float = QCheck.Gen.map Float.abs nice_float
let small_str = QCheck.Gen.(string_size ~gen:printable (int_range 0 12))

let query_gen =
  let open QCheck.Gen in
  map2
    (fun (level, length) (min_freq, budget) ->
      { Pipeline.Query.level; length; min_freq; budget })
    (pair (oneofl [ Opt_level.O0; Opt_level.O1; Opt_level.O2 ])
       (int_range 2 5))
    (pair (option pos_float) (option (int_range 0 100000)))

let diag_gen =
  let open QCheck.Gen in
  let severity = oneofl [ Diag.Info; Diag.Warning; Diag.Error ] in
  let stage =
    oneofl
      [ Diag.Frontend; Diag.Simulation; Diag.Scheduling; Diag.Detection;
        Diag.Coverage; Diag.Verification; Diag.Selection; Diag.Reporting;
        Diag.Driver ]
  in
  let pos =
    option
      (map2 (fun line col -> { Diag.line; col }) (int_range 0 9999)
         (int_range 0 999))
  in
  map2
    (fun ((severity, stage), (file, pos)) (message, context) ->
      { Diag.severity; stage; file; pos; message; context })
    (pair (pair severity stage) (pair (option small_str) pos))
    (pair small_str (list_size (int_range 0 3) (pair small_str small_str)))

let classes_gen =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (oneofl [ "add"; "subtract"; "fload"; "fmultiply"; "compare"; "shift" ]))

let occurrence_gen =
  let open QCheck.Gen in
  map2
    (fun opids count -> { Detect.opids; count })
    (list_size (int_range 1 3) (pair small_nat small_nat))
    small_nat

let detected_gen =
  let open QCheck.Gen in
  map3
    (fun classes freq occurrences -> { Detect.classes; freq; occurrences })
    classes_gen pos_float
    (list_size (int_range 0 3) occurrence_gen)

let completeness_gen =
  QCheck.Gen.oneofl [ Detect.Exact; Detect.Budget_truncated ]

let detect_report_gen =
  let open QCheck.Gen in
  map2
    (fun detections completeness -> { Detect.detections; completeness })
    (list_size (int_range 0 4) detected_gen)
    completeness_gen

let coverage_gen =
  let open QCheck.Gen in
  map3
    (fun picks coverage completeness ->
      { Coverage.picks; coverage; completeness })
    (list_size (int_range 0 4)
       (map2
          (fun pick_classes pick_freq -> { Coverage.pick_classes; pick_freq })
          classes_gen pos_float))
    pos_float completeness_gen

let cache_stats_gen =
  let open QCheck.Gen in
  map2
    (fun (hits, disk_hits, misses) (stores, corrupt, io_errors) ->
      { Cache.hits; disk_hits; misses; stores; corrupt; io_errors })
    (triple small_nat small_nat small_nat)
    (triple small_nat small_nat small_nat)

let supervise_stats_gen =
  let open QCheck.Gen in
  map2
    (fun (tasks, attempts, retries) ((failures, timeouts), (quarantined, degraded)) ->
      { Supervise.tasks; attempts; retries; failures; timeouts; quarantined;
        degraded })
    (triple small_nat small_nat small_nat)
    (pair (pair small_nat small_nat) (pair small_nat small_nat))

let engine_stats_gen =
  let open QCheck.Gen in
  map2
    (fun (base, sched) (verify, supervise) ->
      { Engine.base; sched; verify; supervise })
    (pair cache_stats_gen cache_stats_gen)
    (pair cache_stats_gen supervise_stats_gen)

let level_gen = QCheck.Gen.oneofl [ Opt_level.O0; Opt_level.O1; Opt_level.O2 ]

let chain_report_gen =
  let open QCheck.Gen in
  map3
    (fun (cr_mnemonic, cr_classes) (cr_delay, cr_slack)
         (cr_cycles, cr_latency_sum) ->
      { Timing.cr_mnemonic; cr_classes; cr_delay; cr_slack; cr_cycles;
        cr_latency_sum })
    (pair small_str classes_gen)
    (pair pos_float nice_float)
    (pair small_nat small_nat)

let timing_report_gen =
  let open QCheck.Gen in
  map3
    (fun ((t_benchmark, t_level), (t_uarch, t_clock))
         ((t_baseline_cycles, t_asip_cycles),
          (t_estimated_speedup, t_measured_cycles))
         ((t_measured_speedup, t_total_area), (t_chains, t_rejected)) ->
      { Timing.t_benchmark; t_level; t_uarch; t_clock; t_baseline_cycles;
        t_asip_cycles; t_estimated_speedup; t_measured_cycles;
        t_measured_speedup; t_total_area; t_chains; t_rejected })
    (pair (pair small_str level_gen) (pair small_str pos_float))
    (pair (pair small_nat small_nat) (pair pos_float small_nat))
    (pair (pair pos_float pos_float)
       (pair
          (list_size (int_range 0 3) chain_report_gen)
          (list_size (int_range 0 2) diag_gen)))

let stats_payload_gen =
  let open QCheck.Gen in
  map2
    (fun engine ((requests, errors), (memo_hits, coalesced), uptime_s) ->
      { Api.engine;
        service = { Api.requests; errors; memo_hits; coalesced; uptime_s } })
    engine_stats_gen
    (triple (pair small_nat small_nat) (pair small_nat small_nat) pos_float)

let request_gen =
  let open QCheck.Gen in
  let bench = oneofl [ "fir"; "iir"; "pse"; "intfft"; "nosuch" ] in
  oneof
    [
      return Api.Ping;
      return Api.Stats;
      return Api.Shutdown;
      map2
        (fun benchmark query -> Api.Detect { benchmark; query })
        bench query_gen;
      map2
        (fun benchmark query -> Api.Coverage { benchmark; query })
        bench query_gen;
      map2
        (fun benchmark mode -> Api.Verify { benchmark; mode })
        bench
        (oneofl [ `Ir; `Full; `Tv ]);
      map (fun benchmark -> Api.Lint { benchmark }) (option bench);
      map3
        (fun seed index size -> Api.Corpus_sample { seed; index; size })
        small_nat small_nat
        (option (int_range 3 40));
      map3
        (fun (benchmark, level) uarch clock ->
          Api.Timing { benchmark; level; uarch; clock })
        (pair bench level_gen)
        (oneofl [ "flat"; "risc5"; "nosuch" ])
        (option pos_float);
    ]

let equiv_verdict_gen =
  let open QCheck.Gen in
  map3
    (fun ev_benchmark (ev_levels, ev_refinement_failures, ev_counterexamples)
         ev_findings ->
      { Api.ev_benchmark; ev_levels; ev_refinement_failures;
        ev_counterexamples; ev_findings })
    small_str
    (triple (int_range 1 3) small_nat small_nat)
    (list_size (int_range 0 3) diag_gen)

let payload_gen =
  let open QCheck.Gen in
  oneof
    [
      return Api.Pong;
      return Api.Stopping;
      map (fun r -> Api.Detect_result r) detect_report_gen;
      map (fun r -> Api.Coverage_result r) coverage_gen;
      map (fun ds -> Api.Findings ds) (list_size (int_range 0 3) diag_gen);
      map (fun s -> Api.Stats_result s) stats_payload_gen;
      map (fun v -> Api.Tv_result v) equiv_verdict_gen;
      map3
        (fun (seed, index) size (name, source) ->
          Api.Sample { seed; index; size; name; source })
        (pair small_nat small_nat)
        (int_range 3 40)
        (pair small_str small_str);
      map (fun r -> Api.Timing_result r) timing_report_gen;
    ]

let response_gen =
  let open QCheck.Gen in
  map3
    (fun id cache body -> { Api.id; cache; body })
    small_str
    (oneofl [ Api.Hit; Api.Join; Api.Miss; Api.Uncached ])
    (oneof
       [ map Result.ok payload_gen; map Result.error diag_gen ])

(* --- round-trip properties ------------------------------------------------ *)

let roundtrip name gen encode decode eq print =
  QCheck.Test.make ~count:200 ~name
    (QCheck.make ~print gen)
    (fun v ->
      match decode (encode v) with
      | Ok v' -> eq v v'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_query_roundtrip =
  roundtrip "query json round-trip" query_gen Api.query_to_json
    Api.query_of_json ( = )
    (fun q -> Json.to_string (Api.query_to_json q))

let prop_diag_roundtrip =
  roundtrip "diag json round-trip" diag_gen Api.diag_to_json Api.diag_of_json
    ( = ) Diag.to_string

(* The service reuses the established diagnostic schema: rendering the
   service encoder's object must be byte-identical to Diag.to_json. *)
let prop_diag_matches_diag_to_json =
  QCheck.Test.make ~count:200 ~name:"diag_to_json matches Diag.to_json"
    (QCheck.make ~print:Diag.to_string diag_gen)
    (fun d -> Json.to_string (Api.diag_to_json d) = Diag.to_json d)

let prop_detect_roundtrip =
  roundtrip "detect-report json round-trip" detect_report_gen
    Api.detect_report_to_json Api.detect_report_of_json ( = )
    (fun r -> Json.to_string (Api.detect_report_to_json r))

let prop_coverage_roundtrip =
  roundtrip "coverage json round-trip" coverage_gen Api.coverage_to_json
    Api.coverage_of_json ( = )
    (fun r -> Json.to_string (Api.coverage_to_json r))

let prop_findings_roundtrip =
  roundtrip "findings json round-trip"
    QCheck.Gen.(list_size (int_range 0 4) diag_gen)
    Api.findings_to_json Api.findings_of_json ( = )
    (fun ds -> Json.to_string (Api.findings_to_json ds))

let prop_equiv_verdict_roundtrip =
  roundtrip "equiv-verdict json round-trip" equiv_verdict_gen
    Api.equiv_verdict_to_json Api.equiv_verdict_of_json ( = )
    (fun v -> Json.to_string (Api.equiv_verdict_to_json v))

let prop_timing_report_roundtrip =
  roundtrip "timing-report json round-trip" timing_report_gen
    Api.timing_report_to_json Api.timing_report_of_json ( = )
    (fun r -> Json.to_string (Api.timing_report_to_json r))

let prop_engine_stats_roundtrip =
  roundtrip "engine-stats json round-trip" engine_stats_gen
    Api.engine_stats_to_json Api.engine_stats_of_json ( = )
    (fun s -> Json.to_string (Api.engine_stats_to_json s))

let prop_stats_roundtrip =
  roundtrip "stats json round-trip" stats_payload_gen Api.stats_to_json
    Api.stats_of_json ( = )
    (fun s -> Json.to_string (Api.stats_to_json s))

let prop_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"request frame round-trip"
    (QCheck.make
       ~print:(fun (id, req) -> Api.encode_request ~id req)
       QCheck.Gen.(pair small_str request_gen))
    (fun (id, req) ->
      match Api.decode_request (Api.encode_request ~id req) with
      | Ok (id', req') -> id' = id && req' = req
      | Error d -> QCheck.Test.fail_reportf "decode failed: %s" d.message)

let prop_response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"response frame round-trip"
    (QCheck.make ~print:Api.encode_response response_gen)
    (fun r ->
      match Api.decode_response (Api.encode_response r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* Any JSON value survives print -> parse -> print (canonical form is a
   fixed point), and the parser is total on arbitrary line noise. *)
let json_gen =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      let leaf =
        oneof
          [ return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) int;
            map (fun f -> Json.Float f) nice_float;
            map (fun s -> Json.String s) small_str ]
      in
      if depth = 0 then leaf
      else
        oneof
          [ leaf;
            map (fun l -> Json.List l) (list_size (int_range 0 3) (self (depth - 1)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 3) (pair small_str (self (depth - 1))))
          ])
    3

let prop_json_print_parse_fixpoint =
  QCheck.Test.make ~count:300 ~name:"json print/parse fixpoint"
    (QCheck.make ~print:Json.to_string json_gen)
    (fun j ->
      let s = Json.to_string j in
      match Json.of_string s with
      | Ok j' -> Json.to_string j' = s
      | Error e -> QCheck.Test.fail_reportf "parse failed on %s: %s" s e)

let prop_json_parser_total =
  QCheck.Test.make ~count:500 ~name:"json parser total on noise"
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s ->
      match Json.of_string s with Ok _ | Error _ -> true)

(* --- parser edge cases ---------------------------------------------------- *)

let test_json_parser_errors () =
  let bad s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok j ->
        Alcotest.failf "expected parse error on %S, got %s" s
          (Json.to_string j)
  in
  bad "";
  bad "{";
  bad "[1,2,";
  bad "{\"a\":}";
  bad "{} trailing";
  bad "\"unterminated";
  bad "\"bad \\q escape\"";
  bad "nul";
  bad "01e";
  bad "\"ctrl \x01 char\"";
  (* a depth bomb returns Error instead of overflowing the stack *)
  bad (String.concat "" (List.init 10_000 (fun _ -> "[")));
  Alcotest.(check bool) "deep but legal nesting parses" true
    (let depth = 200 in
     let s =
       String.concat ""
         (List.init depth (fun _ -> "[")
         @ [ "1" ]
         @ List.init depth (fun _ -> "]"))
     in
     Result.is_ok (Json.of_string s))

let test_json_values () =
  let ok s expected =
    match Json.of_string s with
    | Ok j -> Alcotest.(check string) s expected (Json.to_string j)
    | Error e -> Alcotest.failf "parse of %S failed: %s" s e
  in
  ok "42" "42";
  ok "-7" "-7";
  ok " { \"a\" : [ 1 , 2.5 , null , true ] } " "{\"a\":[1,2.5,null,true]}";
  ok "\"\\u0041\\n\"" "\"A\\n\"";
  ok "1e2" "100.0";
  ok "1.25" "1.25"

(* --- daemon error paths (handle_line is total) ---------------------------- *)

let make_server () =
  Server.create ~engine:(Engine.create ~jobs:1 ()) ()

let decode_frame frame =
  match Api.decode_response frame with
  | Ok r -> r
  | Error e -> Alcotest.failf "daemon produced an undecodable frame: %s" e

let response_of server line = decode_frame (Server.handle_line server line)

let error_kind (r : Api.response) =
  match r.body with
  | Ok _ -> Alcotest.fail "expected an error response"
  | Error d -> (
      match List.assoc_opt "kind" d.context with
      | Some k -> k
      | None -> Alcotest.fail "error diagnostic carries no kind")

let test_malformed_frames () =
  let server = make_server () in
  Alcotest.(check string) "malformed json" "protocol-error"
    (error_kind (response_of server "{not json"));
  Alcotest.(check string) "non-object frame" "protocol-error"
    (error_kind (response_of server "[1,2,3]"));
  Alcotest.(check string) "missing api" "unsupported-api-version"
    (error_kind (response_of server "{\"op\":\"ping\"}"));
  Alcotest.(check string) "wrong api version" "unsupported-api-version"
    (error_kind (response_of server "{\"api\":99,\"op\":\"ping\"}"));
  Alcotest.(check string) "unknown op" "protocol-error"
    (error_kind (response_of server "{\"api\":1,\"op\":\"frobnicate\"}"));
  Alcotest.(check string) "missing query" "protocol-error"
    (error_kind
       (response_of server "{\"api\":1,\"op\":\"detect\",\"benchmark\":\"fir\"}"));
  (* id still echoes on a decodable-but-invalid request *)
  let r =
    response_of server
      "{\"api\":1,\"id\":\"req-7\",\"op\":\"verify\",\"benchmark\":\"fir\",\"mode\":\"nope\"}"
  in
  Alcotest.(check string) "id echo lost on invalid body is empty" "" r.id;
  Alcotest.(check string) "invalid mode" "protocol-error" (error_kind r)

(* Frames from a schema-v1 peer still decode: a v1 result object can
   only carry v1 kinds, and the decoders key on "kind", never on the
   version stamp. *)
let test_v1_frames_decode () =
  let line =
    "{\"api\":1,\"id\":\"old\",\"ok\":true,\"cache\":\"miss\",\
     \"result\":{\"kind\":\"findings\",\"schema_version\":1,\
     \"findings\":[]}}"
  in
  (match Api.decode_response line with
  | Ok { body = Ok (Api.Findings []); id = "old"; _ } -> ()
  | Ok _ -> Alcotest.fail "decoded to the wrong payload"
  | Error e -> Alcotest.failf "v1 frame rejected: %s" e);
  let obj =
    "{\"kind\":\"detect-report\",\"schema_version\":1,\
     \"completeness\":\"exact\",\"detections\":[]}"
  in
  match
    Result.bind
      (Result.map_error (fun e -> e) (Json.of_string obj))
      Api.detect_report_of_json
  with
  | Ok { Detect.detections = []; completeness = Detect.Exact } -> ()
  | Ok _ -> Alcotest.fail "decoded to the wrong report"
  | Error e -> Alcotest.failf "v1 object rejected: %s" e

(* Likewise for schema-v2 frames (pre-timing): the v2 kinds decode
   unchanged after the v3 bump, so old peers keep working. *)
let test_v2_frames_decode () =
  let line =
    "{\"api\":1,\"id\":\"v2\",\"ok\":true,\"cache\":\"miss\",\
     \"result\":{\"kind\":\"equiv-verdict\",\"schema_version\":2,\
     \"benchmark\":\"fir\",\"levels\":3,\"refinement_failures\":0,\
     \"counterexamples\":0,\"findings\":[]}}"
  in
  match Api.decode_response line with
  | Ok
      { body =
          Ok
            (Api.Tv_result
               { Api.ev_benchmark = "fir"; ev_levels = 3;
                 ev_refinement_failures = 0; ev_counterexamples = 0;
                 ev_findings = [] });
        id = "v2";
        _ } ->
      ()
  | Ok _ -> Alcotest.fail "decoded to the wrong payload"
  | Error e -> Alcotest.failf "v2 frame rejected: %s" e

let test_unknown_benchmark () =
  let server = make_server () in
  let line =
    Api.encode_request
      (Api.Detect
         { benchmark = "nosuchbench";
           query = Pipeline.Query.make ~length:2 Opt_level.O1 })
  in
  let r = response_of server line in
  (match r.body with
  | Error d ->
      Alcotest.(check bool) "message names the benchmark" true
        (contains d.message "nosuchbench")
  | Ok _ -> Alcotest.fail "expected an error");
  Alcotest.(check string) "uncached" "none"
    (Api.cache_status_to_string r.cache)

let test_ping_stats_shutdown () =
  let server = make_server () in
  (match (response_of server (Api.encode_request ~id:"a" Api.Ping)).body with
  | Ok Api.Pong -> ()
  | _ -> Alcotest.fail "expected pong");
  (match (response_of server (Api.encode_request Api.Stats)).body with
  | Ok (Api.Stats_result s) ->
      Alcotest.(check int) "requests so far" 2 s.service.requests
  | _ -> Alcotest.fail "expected stats");
  Alcotest.(check bool) "not stopping yet" false (Server.stopping server);
  (match (response_of server (Api.encode_request Api.Shutdown)).body with
  | Ok Api.Stopping -> ()
  | _ -> Alcotest.fail "expected stopping");
  Alcotest.(check bool) "stopping after shutdown" true
    (Server.stopping server)

(* --- in-flight dedup across concurrent clients ---------------------------- *)

(* The timing op end-to-end through the daemon: a flat-uarch request
   answers with a timing report whose measurement agrees with the
   estimate, and an unknown preset is a structured error, not a crash. *)
let test_timing_op () =
  let server = make_server () in
  let line =
    Api.encode_request
      (Api.Timing
         { benchmark = "fir"; level = Opt_level.O1; uarch = "flat";
           clock = None })
  in
  (match (response_of server line).body with
  | Ok (Api.Timing_result r) ->
      Alcotest.(check string) "uarch echoed" "flat" r.Timing.t_uarch;
      Alcotest.(check bool) "estimate and measurement agree" true
        (Timing.agrees r);
      Alcotest.(check int) "flat rejects nothing" 0
        (List.length r.Timing.t_rejected)
  | Ok _ -> Alcotest.fail "expected a timing report"
  | Error d -> Alcotest.failf "timing request failed: %s" d.message);
  (* identical request is memoized *)
  Alcotest.(check string) "second request hits" "hit"
    (Api.cache_status_to_string (response_of server line).cache);
  let bad =
    Api.encode_request
      (Api.Timing
         { benchmark = "fir"; level = Opt_level.O1; uarch = "vliw9000";
           clock = None })
  in
  let r = response_of server bad in
  Alcotest.(check string) "unknown preset kind" "unknown-uarch"
    (error_kind r)

let test_concurrent_dedup () =
  let engine = Engine.create ~jobs:1 () in
  let server = Server.create ~engine () in
  let line =
    Api.encode_request
      (Api.Detect
         { benchmark = "fir";
           query = Pipeline.Query.make ~length:2 Opt_level.O1 })
  in
  let frames =
    Pool.run ~jobs:4 (Array.init 4 (fun _ () -> Server.handle_line server line))
  in
  let responses = Array.map decode_frame frames in
  let payloads =
    Array.map
      (fun (r : Api.response) ->
        match r.body with
        | Ok p -> p
        | Error d -> Alcotest.failf "request failed: %s" d.message)
      responses
  in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "all payloads identical" true (p = payloads.(0)))
    payloads;
  let count status =
    Array.to_list responses
    |> List.filter (fun (r : Api.response) -> r.cache = status)
    |> List.length
  in
  Alcotest.(check int) "exactly one miss" 1 (count Api.Miss);
  Alcotest.(check int) "the rest hit or join" 3
    (count Api.Hit + count Api.Join);
  (* the engine computed the analysis exactly once: no frontend/sched
     recomputation behind the coalescing *)
  let stats = Engine.stats engine in
  Alcotest.(check int) "one base analysis" 1 stats.base.misses;
  Alcotest.(check int) "no base cache hits needed" 0 stats.base.hits;
  (* a later identical request is a memo hit and still recomputes nothing *)
  let r5 = response_of server line in
  Alcotest.(check string) "second round is a hit" "hit"
    (Api.cache_status_to_string r5.cache);
  Alcotest.(check int) "still one base analysis" 1
    (Engine.stats engine).base.misses

(* --- socket-level end-to-end ---------------------------------------------- *)

let temp_socket_path () =
  let path = Filename.temp_file "asipfb_service" ".sock" in
  Sys.remove path;
  path

let test_socket_end_to_end () =
  let socket = temp_socket_path () in
  let engine = Engine.create ~jobs:1 () in
  let server = Server.create ~engine () in
  let daemon =
    Domain.spawn (fun () -> Server.serve server ~socket ~workers:2 ())
  in
  let rec wait_for_socket n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if not (Sys.file_exists socket) then begin
      Unix.sleepf 0.05;
      wait_for_socket (n - 1)
    end
  in
  wait_for_socket 200;
  (* a second daemon on the same socket refuses with a one-line error *)
  (match
     Server.serve (Server.create ~engine ()) ~socket ~workers:1 ()
   with
  | Error msg ->
      Alcotest.(check bool) "refusal names the live daemon" true
        (contains msg "already served")
  | Ok () -> Alcotest.fail "second daemon must refuse a live socket");
  let c =
    match Client.connect ~socket with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  (match Client.rpc c ~id:"ping-1" Api.Ping with
  | Ok { Api.id = "ping-1"; body = Ok Api.Pong; _ } -> ()
  | Ok _ -> Alcotest.fail "unexpected ping response"
  | Error e -> Alcotest.fail e);
  (* malformed frames come back as structured errors on the same
     connection, which stays usable *)
  (match Client.rpc_raw c "{broken" with
  | Ok frame -> (
      match Api.decode_response frame with
      | Ok r ->
          Alcotest.(check string) "malformed frame -> protocol error"
            "protocol-error" (error_kind r)
      | Error e -> Alcotest.failf "undecodable error frame: %s" e)
  | Error e -> Alcotest.fail e);
  (match Client.rpc c Api.Shutdown with
  | Ok { Api.body = Ok Api.Stopping; _ } -> ()
  | Ok _ -> Alcotest.fail "unexpected shutdown response"
  | Error e -> Alcotest.fail e);
  Client.close c;
  (match Domain.join daemon with
  | Ok () -> ()
  | Error e -> Alcotest.failf "daemon exited with error: %s" e);
  Alcotest.(check bool) "socket file removed on shutdown" false
    (Sys.file_exists socket)

let test_refuses_non_socket () =
  let path = Filename.temp_file "asipfb_service" ".regular" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match
        Server.serve
          (Server.create ~engine:(Engine.sequential ()) ())
          ~socket:path ~workers:1 ()
      with
      | Error msg ->
          Alcotest.(check bool) "refuses to replace a regular file" true
            (contains msg "not a socket");
          Alcotest.(check bool) "file survives" true (Sys.file_exists path)
      | Ok () -> Alcotest.fail "serve must refuse a non-socket path")

let suite =
  [
    ( "service",
      [
        QCheck_alcotest.to_alcotest prop_query_roundtrip;
        QCheck_alcotest.to_alcotest prop_diag_roundtrip;
        QCheck_alcotest.to_alcotest prop_diag_matches_diag_to_json;
        QCheck_alcotest.to_alcotest prop_detect_roundtrip;
        QCheck_alcotest.to_alcotest prop_coverage_roundtrip;
        QCheck_alcotest.to_alcotest prop_findings_roundtrip;
        QCheck_alcotest.to_alcotest prop_equiv_verdict_roundtrip;
        QCheck_alcotest.to_alcotest prop_timing_report_roundtrip;
        QCheck_alcotest.to_alcotest prop_engine_stats_roundtrip;
        QCheck_alcotest.to_alcotest prop_stats_roundtrip;
        QCheck_alcotest.to_alcotest prop_request_roundtrip;
        QCheck_alcotest.to_alcotest prop_response_roundtrip;
        QCheck_alcotest.to_alcotest prop_json_print_parse_fixpoint;
        QCheck_alcotest.to_alcotest prop_json_parser_total;
        Alcotest.test_case "json parser errors" `Quick test_json_parser_errors;
        Alcotest.test_case "json values" `Quick test_json_values;
        Alcotest.test_case "malformed frames" `Quick test_malformed_frames;
        Alcotest.test_case "v1 frames decode" `Quick test_v1_frames_decode;
        Alcotest.test_case "v2 frames decode" `Quick test_v2_frames_decode;
        Alcotest.test_case "unknown benchmark" `Quick test_unknown_benchmark;
        Alcotest.test_case "timing op" `Quick test_timing_op;
        Alcotest.test_case "ping/stats/shutdown" `Quick
          test_ping_stats_shutdown;
        Alcotest.test_case "concurrent dedup" `Quick test_concurrent_dedup;
        Alcotest.test_case "socket end-to-end" `Quick test_socket_end_to_end;
        Alcotest.test_case "refuses non-socket" `Quick
          test_refuses_non_socket;
      ] );
  ]
