(* Translation validation: semantics vs the reference interpreter, clean
   schedules proving Refines, and the seeded-mutation adversary. *)

module Registry = Asipfb_bench_suite.Registry
module Benchmark = Asipfb_bench_suite.Benchmark
module Schedule = Asipfb_sched.Schedule
module Opt_level = Asipfb_sched.Opt_level
module Semantics = Asipfb_verify.Semantics
module Equiv = Asipfb_verify.Equiv
module Mutate = Asipfb_verify.Mutate
module Interp = Asipfb_sim.Interp
module Ref_interp = Asipfb_sim.Ref_interp
module Value = Asipfb_exec.Value
module Memory = Asipfb_exec.Memory

let levels = Opt_level.all

let dump m = List.map (fun r -> (r, Memory.dump m r)) (Memory.regions m)

let dumps_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ra, da) (rb, db) ->
         ra = rb
         && Array.length da = Array.length db
         && Array.for_all2 Value.equal da db)
       a b

(* The small-step semantics must agree with the reference tree-walker on
   every benchmark: same return value, same final memory, and one trace
   Return event per executed Ret. *)
let test_semantics_matches_ref () =
  List.iter
    (fun (b : Benchmark.t) ->
      let prog = Benchmark.compile b in
      let inputs =
        List.map (fun (r, a) -> (r, Array.copy a)) (b.inputs ())
      in
      let sem = Semantics.run ~inputs prog in
      let ref_ =
        Ref_interp.run
          ~inputs:(List.map (fun (r, a) -> (r, Array.copy a)) (b.inputs ()))
          prog
      in
      (match sem.result with
      | Semantics.Returned v ->
          Alcotest.(check bool)
            (b.name ^ ": return value agrees")
            true
            (Option.equal Value.equal v ref_.Interp.return_value)
      | Semantics.Trapped m -> Alcotest.failf "%s trapped: %s" b.name m
      | Semantics.Out_of_fuel -> Alcotest.failf "%s ran out of fuel" b.name);
      Alcotest.(check bool)
        (b.name ^ ": final memory agrees")
        true
        (dumps_equal (dump sem.memory) (dump ref_.Interp.memory));
      let returns =
        List.filter
          (function Semantics.Return _ -> true | _ -> false)
          sem.trace
      in
      Alcotest.(check bool)
        (b.name ^ ": trace ends with the entry return")
        true
        (returns <> []
        && match List.rev sem.trace with
          | Semantics.Return _ :: _ -> true
          | _ -> false))
    Registry.all

(* A trapping program must produce a Trapped result whose trace ends in
   the trap event — never an exception. *)
let test_semantics_traps () =
  let prog =
    Asipfb_frontend.Lower.compile
      "void main() { int a; int b; a = 1; b = 0; a = a / b; }" ~entry:"main"
  in
  let out = Semantics.run prog in
  (match out.result with
  | Semantics.Trapped _ -> ()
  | _ -> Alcotest.fail "division by zero must trap");
  match List.rev out.trace with
  | Semantics.Trap _ :: _ -> ()
  | _ -> Alcotest.fail "trace must end with the trap event"

(* The acceptance bar: every benchmark × every level proves Refines. *)
let test_clean_suite_refines () =
  List.iter
    (fun (b : Benchmark.t) ->
      let original = Benchmark.compile b in
      List.iter
        (fun level ->
          let sched = Schedule.optimize ~level original in
          match Equiv.check ~original ~transformed:sched.prog () with
          | Equiv.Refines -> ()
          | Equiv.Fails { failures; _ } ->
              Alcotest.failf "%s at %s: %s" b.name
                (Opt_level.to_string level)
                (String.concat "; "
                   (List.map Equiv.failure_to_string failures)))
        levels)
    Registry.all

(* Behavioral-difference oracle shared with the checker: replay both
   programs on Ref_interp over the checker's own deterministic sample
   inputs.  [Some true] = a divergence is observable, [Some false] = all
   samples agree, with the original completing on at least one. *)
let behavioral_diff ~original ~transformed =
  let attempts = List.init 8 Fun.id in
  let observed = ref false in
  let diff =
    List.exists
      (fun attempt ->
        let inputs = Equiv.sample_inputs original ~attempt in
        let run p =
          match Ref_interp.run ~fuel:2_000_000 ~inputs p with
          | o -> Ok (o.Interp.return_value, dump o.Interp.memory)
          | exception Interp.Runtime_error _ -> Error ()
          | exception Interp.Fuel_exhausted _ -> Error ()
        in
        match run original with
        | Error () -> false
        | Ok (ro, mo) -> (
            observed := true;
            match run transformed with
            | Error () -> true
            | Ok (rt, mt) ->
                (not (Option.equal Value.equal ro rt))
                || not (dumps_equal mo mt)))
      attempts
  in
  if diff then Some true else if !observed then Some false else None

(* The QCheck adversary: corrupt a scheduled program and demand that
   (a) whenever the corruption is behaviorally observable on the sample
   inputs, the checker rejects with a Ref_interp-confirmed
   counterexample, and (b) whenever the checker proves Refines, no
   sample input observes a difference (soundness). *)
let mutation_gen =
  QCheck.Gen.(
    let* bench_i = int_bound (List.length Registry.all - 1) in
    let* level_i = int_bound (List.length levels - 1) in
    let* kind_i = int_bound (List.length Mutate.all - 1) in
    let* seed = int_bound 0xFFFF in
    return (bench_i, level_i, kind_i, seed))

let mutation_prop (bench_i, level_i, kind_i, seed) =
  let b = List.nth Registry.all bench_i in
  let level = List.nth levels level_i in
  let kind = List.nth Mutate.all kind_i in
  let original = Benchmark.compile b in
  let sched = Schedule.optimize ~level original in
  match Mutate.apply ~seed kind sched.prog with
  | None -> true
  | Some corrupted -> (
      let verdict = Equiv.check ~original ~transformed:corrupted () in
      match behavioral_diff ~original ~transformed:corrupted with
      | Some true -> (
          match verdict with
          | Equiv.Refines ->
              QCheck.Test.fail_reportf
                "%s %s %s seed=%d: observable corruption proved Refines"
                b.name (Opt_level.to_string level)
                (Mutate.kind_to_string kind) seed
          | Equiv.Fails { counterexample = None; _ } ->
              QCheck.Test.fail_reportf
                "%s %s %s seed=%d: rejected but no counterexample found"
                b.name (Opt_level.to_string level)
                (Mutate.kind_to_string kind) seed
          | Equiv.Fails { counterexample = Some cx; _ } ->
              cx.Equiv.cx_ref_confirmed
              || QCheck.Test.fail_reportf
                   "%s %s %s seed=%d: counterexample not Ref_interp-confirmed \
                    (%s)"
                   b.name (Opt_level.to_string level)
                   (Mutate.kind_to_string kind) seed cx.Equiv.cx_divergence)
      | Some false | None -> (
          (* Not observable on the samples: the checker may conservatively
             reject, but a Refines verdict is also fine — just re-assert
             soundness explicitly for the Refines case. *)
          match verdict with
          | Equiv.Refines -> true
          | Equiv.Fails _ -> true))

let mutation_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"mutated schedules are caught"
       (QCheck.make mutation_gen) mutation_prop)

(* One pinned corruption end-to-end: fir's O2 schedule with a constant
   edit must be rejected with a counterexample whose inputs replay to a
   real divergence on the reference interpreter. *)
let test_pinned_counterexample () =
  let b = List.find (fun (b : Benchmark.t) -> b.name = "fir") Registry.all in
  let original = Benchmark.compile b in
  let sched = Schedule.optimize ~level:Opt_level.O2 original in
  let corrupted =
    match
      List.find_map
        (fun seed -> Mutate.apply ~seed Mutate.Edit_const sched.prog)
        (List.init 16 Fun.id)
    with
    | Some p -> p
    | None -> Alcotest.fail "no edit-const site in fir's O2 schedule"
  in
  (* fir's arithmetic uses every coefficient, so a constant edit must be
     observable; if a chosen site ever becomes dead, pick another seed. *)
  match Equiv.check ~original ~transformed:corrupted () with
  | Equiv.Refines -> Alcotest.fail "corrupted fir schedule proved Refines"
  | Equiv.Fails { counterexample; failures } -> (
      Alcotest.(check bool) "has failures" true (failures <> []);
      match counterexample with
      | None -> Alcotest.fail "no counterexample for corrupted fir"
      | Some cx ->
          Alcotest.(check bool) "ref-confirmed" true cx.Equiv.cx_ref_confirmed;
          let inputs = Equiv.sample_inputs original ~attempt:cx.Equiv.cx_attempt in
          let run p =
            match Ref_interp.run ~inputs p with
            | o -> Ok (o.Interp.return_value, dump o.Interp.memory)
            | exception Interp.Runtime_error m -> Error m
          in
          let diverges =
            match (run original, run corrupted) with
            | Ok (ro, mo), Ok (rt, mt) ->
                (not (Option.equal Value.equal ro rt))
                || not (dumps_equal mo mt)
            | Ok _, Error _ -> true
            | Error m, _ ->
                Alcotest.failf "original trapped on its own inputs: %s" m
          in
          Alcotest.(check bool)
            "counterexample inputs replay to a divergence" true diverges)

(* Equiv's diagnostics carry the machine-readable context the service
   verdict is built from. *)
let test_diag_context () =
  let b = List.nth Registry.all 0 in
  let original = Benchmark.compile b in
  let sched = Schedule.optimize ~level:Opt_level.O1 original in
  match Mutate.apply ~seed:7 Mutate.Retarget_jump sched.prog with
  | None -> () (* no branch to retarget: nothing to assert *)
  | Some corrupted ->
      let diags =
        Equiv.to_diags ~context:[ ("level", "O1") ]
          (Equiv.check ~original ~transformed:corrupted ())
      in
      List.iter
        (fun (d : Asipfb_diag.Diag.t) ->
          Alcotest.(check bool)
            "every diag has a check tag" true
            (List.mem_assoc "check" d.context);
          Alcotest.(check bool)
            "context carries the level" true
            (List.assoc_opt "level" d.context = Some "O1"))
        diags

let suite =
  [
    ( "equiv",
      [
        Alcotest.test_case "semantics agrees with Ref_interp" `Quick
          test_semantics_matches_ref;
        Alcotest.test_case "semantics traps structurally" `Quick
          test_semantics_traps;
        Alcotest.test_case "clean 12x3 suite refines" `Quick
          test_clean_suite_refines;
        Alcotest.test_case "pinned corrupted schedule rejected" `Quick
          test_pinned_counterexample;
        Alcotest.test_case "diag context" `Quick test_diag_context;
        mutation_test;
      ] );
  ]
