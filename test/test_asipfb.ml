(* Test runner: aggregates every module's suite. *)

let () =
  Alcotest.run "asipfb"
    (Test_util.suite @ Test_lexer.suite @ Test_parser.suite @ Test_sema.suite
   @ Test_lower.suite @ Test_ir.suite @ Test_cfg.suite @ Test_sim.suite
   @ Test_ddg.suite @ Test_transforms.suite @ Test_chain.suite
   @ Test_asip.suite @ Test_bench_suite.suite @ Test_report.suite
   @ Test_pipeline.suite @ Test_extensions.suite @ Test_codegen.suite
   @ Test_conformance.suite @ Test_opmix_export.suite @ Test_reaching.suite @ Test_extra_suite.suite @ Test_properties.suite @ Test_unroll.suite @ Test_misc.suite @ Test_netlist.suite
 @ Test_exec.suite @ Test_diag.suite @ Test_resilience.suite @ Test_engine.suite
 @ Test_verify.suite @ Test_equiv.suite @ Test_supervise.suite
 @ Test_corpus.suite @ Test_service.suite)
