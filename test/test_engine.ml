(* Parallel analysis engine: pool semantics, content-keyed caching
   (hit/miss/invalidation, disk round-trip), and the central determinism
   contract — a parallel run is byte-identical to the sequential one for
   every experiment artifact. *)

module Benchmark = Asipfb_bench_suite.Benchmark
module Registry = Asipfb_bench_suite.Registry
module Opt_level = Asipfb_sched.Opt_level
module Pipeline = Asipfb.Pipeline
module Engine = Asipfb_engine.Engine
module Cache = Asipfb_engine.Cache
module Pool = Asipfb_engine.Pool
module Metrics = Asipfb_engine.Metrics
module Inflight = Asipfb_engine.Inflight

let fir () = Registry.find "fir"

let fresh_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.temp_dir "asipfb_engine_test" (string_of_int !n)

(* --- pool --------------------------------------------------------------- *)

let test_pool_order () =
  (* Results land in task order no matter how domains interleave. *)
  List.iter
    (fun jobs ->
      let tasks = Array.init 37 (fun i () -> i * i) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves task order" jobs)
        (Array.init 37 (fun i -> i * i))
        (Pool.run ~jobs tasks))
    [ 1; 2; 4; 13 ]

let test_pool_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Pool.run ~jobs:4 [||]);
  Alcotest.(check (array int)) "single" [| 7 |]
    (Pool.run ~jobs:4 [| (fun () -> 7) |])

let test_pool_exception () =
  (* Every task still runs; the lowest-indexed failure is re-raised. *)
  let ran = Array.make 8 false in
  let tasks =
    Array.init 8 (fun i () ->
        ran.(i) <- true;
        if i = 5 || i = 2 then failwith (string_of_int i))
  in
  (match Pool.run ~jobs:3 tasks with
  | _ -> Alcotest.fail "must re-raise"
  | exception Failure msg ->
      Alcotest.(check string) "lowest-indexed failure wins" "2" msg);
  Alcotest.(check (array bool)) "all tasks ran" (Array.make 8 true) ran

(* --- cache unit tests --------------------------------------------------- *)

let test_cache_hit_miss () =
  let c : int Cache.t = Cache.create () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  Alcotest.(check int) "miss computes" 42
    (Cache.find_or_compute c ~key:"k1" compute);
  Alcotest.(check int) "hit reuses" 42
    (Cache.find_or_compute c ~key:"k1" compute);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "different key recomputes" 42
    (Cache.find_or_compute c ~key:"k2" compute);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.hits;
  Alcotest.(check int) "misses" 2 s.misses

let test_cache_disabled () =
  let c : int Cache.t = Cache.create ~enabled:false () in
  let calls = ref 0 in
  let compute () = incr calls; 0 in
  ignore (Cache.find_or_compute c ~key:"k" compute);
  ignore (Cache.find_or_compute c ~key:"k" compute);
  Alcotest.(check int) "disabled cache always computes" 2 !calls

let test_cache_disk_roundtrip () =
  let dir = fresh_cache_dir () in
  let c1 : string Cache.t = Cache.create ~dir () in
  ignore (Cache.find_or_compute c1 ~key:"deadbeef" (fun () -> "payload"));
  Alcotest.(check int) "stored to disk" 1 (Cache.stats c1).stores;
  (* A fresh cache over the same directory — a later process — loads the
     entry from disk instead of recomputing. *)
  let c2 : string Cache.t = Cache.create ~dir () in
  let v =
    Cache.find_or_compute c2 ~key:"deadbeef" (fun () ->
        Alcotest.fail "disk entry must satisfy the lookup")
  in
  Alcotest.(check string) "disk value survives" "payload" v;
  Alcotest.(check int) "counted as disk hit" 1 (Cache.stats c2).disk_hits

let test_cache_corrupt_disk_entry_is_miss () =
  let dir = fresh_cache_dir () in
  let c1 : string Cache.t = Cache.create ~dir () in
  ignore (Cache.find_or_compute c1 ~key:"cafe" (fun () -> "good"));
  (* Truncate the entry on disk (entries live in digest-prefix
     subdirectories): the fresh cache must fall back to computing rather
     than crash. *)
  let rec entry_files dir =
    Array.to_list (Sys.readdir dir)
    |> List.concat_map (fun f ->
           let p = Filename.concat dir f in
           if Sys.is_directory p then entry_files p
           else if Filename.check_suffix p ".cache" then [ p ]
           else [])
  in
  (match entry_files dir with
  | [] -> Alcotest.fail "expected a disk entry"
  | files ->
      List.iter
        (fun f ->
          Out_channel.with_open_bin f (fun oc ->
              output_string oc "not marshal data"))
        files);
  let c2 : string Cache.t = Cache.create ~dir () in
  Alcotest.(check string) "corrupt entry recomputed" "recomputed"
    (Cache.find_or_compute c2 ~key:"cafe" (fun () -> "recomputed"));
  Alcotest.(check int) "counted as miss" 1 (Cache.stats c2).misses

(* --- content keys ------------------------------------------------------- *)

let test_key_invalidation_on_source_edit () =
  let b = fir () in
  let edited = { b with Benchmark.source = b.Benchmark.source ^ "\n" } in
  Alcotest.(check bool) "source edit changes base key" true
    (Engine.source_key b <> Engine.source_key edited);
  Alcotest.(check bool) "source edit changes sched key" true
    (Engine.sched_key b Opt_level.O1 <> Engine.sched_key edited Opt_level.O1);
  Alcotest.(check bool) "levels have distinct keys" true
    (Engine.sched_key b Opt_level.O0 <> Engine.sched_key b Opt_level.O1);
  Alcotest.(check bool) "keys are stable" true
    (Engine.source_key b = Engine.source_key (fir ()))

let test_key_distinct_across_benchmarks () =
  let keys = List.map Engine.source_key Registry.all in
  Alcotest.(check int) "all base keys distinct"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* --- engine caching behavior -------------------------------------------- *)

let test_warm_run_skips_all_tasks () =
  (* The acceptance criterion: a warm cache run of the full suite serves
     every analyze task (12 base + 36 sched) from the cache. *)
  let e = Engine.create ~jobs:1 ~cache:true () in
  ignore (Pipeline.run_suite ~engine:e ~on_error:`Raise ());
  let cold = Engine.stats e in
  Alcotest.(check int) "cold run misses every base" 12 cold.base.misses;
  Alcotest.(check int) "cold run misses every sched" 36 cold.sched.misses;
  Engine.reset_stats e;
  ignore (Pipeline.run_suite ~engine:e ~on_error:`Raise ());
  let warm = Engine.stats e in
  Alcotest.(check int) "warm base hits" 12 warm.base.hits;
  Alcotest.(check int) "warm sched hits" 36 warm.sched.hits;
  Alcotest.(check int) "warm run computes nothing" 0
    (warm.base.misses + warm.sched.misses)

let test_faulted_runs_never_cached () =
  (* Fault-injected outcomes depend on the injection config, which is not
     part of the key — they must not poison the cache. *)
  let e = Engine.create ~jobs:1 ~cache:true () in
  let faults =
    { Asipfb_sim.Fault.seed = 7; reg_corrupt_rate = 0.01;
      mem_fault_rate = 0.0; fuel_cap = None }
  in
  ignore (Engine.analyze_all e ~faults [ fir () ]);
  let s = Engine.stats e in
  Alcotest.(check int) "faulted base not cached" 0
    (s.base.misses + s.base.hits);
  (* A clean analyze afterwards gets a correct, uncorrupted result. *)
  let a = Engine.analyze e (fir ()) in
  Alcotest.(check bool) "clean run after faults self-checks" true
    (Asipfb_sim.Profile.total a.profile > 0)

let test_engine_disk_cache_across_instances () =
  let dir = fresh_cache_dir () in
  let e1 = Engine.create ~jobs:1 ~cache_dir:dir () in
  let a1 = Engine.analyze e1 (fir ()) in
  let e2 = Engine.create ~jobs:1 ~cache_dir:dir () in
  let a2 = Engine.analyze e2 (fir ()) in
  let s2 = Engine.stats e2 in
  Alcotest.(check int) "base served from disk" 1 s2.base.disk_hits;
  Alcotest.(check int) "scheds served from disk" 3 s2.sched.disk_hits;
  Alcotest.(check bool) "disk round-trip preserves the analysis" true
    (a1.prog = a2.prog && a1.profile = a2.profile
    && a1.outcome = a2.outcome && a1.scheds = a2.scheds)

(* --- determinism: parallel == sequential, for every experiment ---------- *)

let artifacts suite =
  [
    ("table1", fun () -> Asipfb.Experiments.table1 ());
    ("figure3", fun () -> Asipfb.Experiments.figure_combined suite ~length:2);
    ("figure4", fun () -> Asipfb.Experiments.figure_combined suite ~length:4);
    ("table2", fun () -> Asipfb.Experiments.table2 suite);
    ("figure5", fun () -> Asipfb.Experiments.figure_per_benchmark suite ~length:2);
    ("figure6", fun () -> Asipfb.Experiments.figure_per_benchmark suite ~length:4);
    ("table3", fun () -> Asipfb.Experiments.table3 suite);
    ("ilp", fun () -> Asipfb.Experiments.ilp_report suite);
    ("asip", fun () -> Asipfb.Experiments.asip_report suite);
    ("vliw", fun () -> Asipfb.Experiments.vliw_report suite);
    ("resched", fun () -> Asipfb.Experiments.resched_report suite);
    ("ablation_pipelining",
     fun () -> Asipfb.Experiments.ablation_pipelining suite);
    ("ablation_cleanup", fun () -> Asipfb.Experiments.ablation_cleanup suite);
    ("codegen", fun () -> Asipfb.Experiments.codegen_report suite);
    ("ablation_motion", fun () -> Asipfb.Experiments.ablation_motion suite);
    ("opmix", fun () -> Asipfb.Experiments.opmix_report suite);
    ("extra", fun () -> Asipfb.Experiments.extra_report suite);
    ("validation_unroll", fun () -> Asipfb.Experiments.validation_unroll suite);
  ]

let test_parallel_byte_identical () =
  let seq =
    (Pipeline.run_suite ~engine:(Engine.sequential ()) ~on_error:`Raise ())
      .analyses
  in
  let par =
    (Pipeline.run_suite
       ~engine:(Engine.create ~jobs:4 ~cache:false ())
       ~on_error:`Raise ())
      .analyses
  in
  List.iter
    (fun ((name, produce_seq), (_, produce_par)) ->
      Alcotest.(check string)
        (name ^ " byte-identical under jobs:4")
        (produce_seq ()) (produce_par ()))
    (List.combine (artifacts seq) (artifacts par))

let test_parallel_isolation_matches_sequential () =
  let broken : Benchmark.t =
    {
      name = "broken-div0";
      description = "deliberately broken";
      data_input = "none";
      source = "int out[1]; void main() { int z = 0; out[0] = 1 / z; }";
      inputs = (fun () -> []);
      output_regions = [ "out" ];
    }
  in
  let benchmarks = [ fir (); broken; Registry.find "sewha" ] in
  let run engine =
    let r = Pipeline.run_suite ~engine ~benchmarks ~on_error:`Isolate () in
    ( List.map (fun (a : Pipeline.analysis) -> a.benchmark.name) r.analyses,
      List.map
        (fun (f : Pipeline.failure) ->
          (f.failed_benchmark, Asipfb_diag.Diag.to_string f.diag))
        r.failures )
  in
  Alcotest.(check (pair (list string) (list (pair string string))))
    "parallel isolation identical to sequential"
    (run (Engine.sequential ()))
    (run (Engine.create ~jobs:4 ~cache:false ()))

(* --- QCheck: cache round-trips preserve analysis equality --------------- *)

let prop_cache_roundtrip =
  QCheck.Test.make ~name:"disk round-trip preserves analysis equality"
    ~count:6
    QCheck.(int_range 0 (List.length Registry.all - 1))
    (fun i ->
      let b = List.nth Registry.all i in
      let plain = Engine.analyze (Engine.sequential ()) b in
      let dir = fresh_cache_dir () in
      ignore (Engine.analyze (Engine.create ~jobs:1 ~cache_dir:dir ()) b);
      let reloaded =
        Engine.analyze (Engine.create ~jobs:1 ~cache_dir:dir ()) b
      in
      plain.prog = reloaded.prog
      && plain.profile = reloaded.profile
      && plain.outcome = reloaded.outcome
      && plain.scheds = reloaded.scheds)

(* --- metrics ------------------------------------------------------------ *)

let test_metrics_accumulation () =
  let m = Metrics.create () in
  Metrics.add m "sched" ~seconds:0.5;
  Metrics.add m "sched" ~seconds:0.25;
  Metrics.add m "frontend" ~seconds:1.0;
  (match Metrics.snapshot m with
  | [ f; s ] ->
      Alcotest.(check string) "sorted by stage" "frontend" f.Metrics.stage;
      Alcotest.(check int) "frontend count" 1 f.count;
      Alcotest.(check int) "sched count" 2 s.count;
      Alcotest.(check (float 1e-9)) "sched total" 0.75 s.seconds
  | l ->
      Alcotest.fail (Printf.sprintf "expected 2 stages, got %d" (List.length l)));
  Metrics.reset m;
  Alcotest.(check int) "reset clears" 0 (List.length (Metrics.snapshot m))

let test_engine_charges_stages () =
  Metrics.reset Metrics.global;
  ignore (Engine.analyze (Engine.sequential ()) (fir ()));
  let stages =
    List.map (fun s -> s.Metrics.stage) (Metrics.snapshot Metrics.global)
  in
  List.iter
    (fun st ->
      Alcotest.(check bool) (st ^ " recorded") true (List.mem st stages))
    [ "frontend"; "sim"; "sched" ]

(* --- in-flight coalescing ----------------------------------------------- *)

let test_inflight_single_caller () =
  let fl = Inflight.create () in
  let v, outcome = Inflight.run fl ~key:"k" (fun () -> 42) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check bool) "led" true (outcome = Inflight.Led);
  (* entry is removed on completion: a second call recomputes *)
  let v2, outcome2 = Inflight.run fl ~key:"k" (fun () -> 43) in
  Alcotest.(check int) "recomputed" 43 v2;
  Alcotest.(check bool) "led again" true (outcome2 = Inflight.Led)

let test_inflight_exception_propagates () =
  let fl = Inflight.create () in
  (match Inflight.run fl ~key:"boom" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* a failed flight leaves no wedged entry behind *)
  let v, _ = Inflight.run fl ~key:"boom" (fun () -> 7) in
  Alcotest.(check int) "key reusable after failure" 7 v

let test_inflight_coalesces_across_domains () =
  let fl = Inflight.create () in
  let computations = Atomic.make 0 in
  let gate = Atomic.make false in
  let body () =
    (* the leader parks here until every joiner has registered on the
       entry, so the overlap is real, not a timing accident *)
    Atomic.incr computations;
    while not (Atomic.get gate) do Domain.cpu_relax () done;
    99
  in
  let task i () =
    if i > 0 then
      (* joiners enter only while the leader is provably inside [body],
         so the in-flight entry is guaranteed to exist when they arrive *)
      while Atomic.get computations < 1 do
        Domain.cpu_relax ()
      done;
    Inflight.run fl ~key:"shared" body
  in
  let opener =
    Domain.spawn (fun () ->
        while (Inflight.stats fl).Inflight.joined < 3 do
          Domain.cpu_relax ()
        done;
        Atomic.set gate true)
  in
  let results = Pool.run ~jobs:4 (Array.init 4 task) in
  Domain.join opener;
  Array.iter (fun (v, _) -> Alcotest.(check int) "shared value" 99 v) results;
  let led =
    Array.to_list results
    |> List.filter (fun (_, o) -> o = Inflight.Led)
    |> List.length
  in
  Alcotest.(check int) "exactly one leader" 1 led;
  Alcotest.(check int) "exactly one computation" 1 (Atomic.get computations);
  let st = Inflight.stats fl in
  Alcotest.(check int) "stats led" 1 st.Inflight.led;
  Alcotest.(check int) "stats joined" 3 st.Inflight.joined

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "pool order" `Quick test_pool_order;
        Alcotest.test_case "pool edge cases" `Quick test_pool_empty_and_single;
        Alcotest.test_case "pool exception" `Quick test_pool_exception;
        Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
        Alcotest.test_case "cache disk round-trip" `Quick
          test_cache_disk_roundtrip;
        Alcotest.test_case "corrupt disk entry" `Quick
          test_cache_corrupt_disk_entry_is_miss;
        Alcotest.test_case "source edit invalidates" `Quick
          test_key_invalidation_on_source_edit;
        Alcotest.test_case "keys distinct" `Quick
          test_key_distinct_across_benchmarks;
        Alcotest.test_case "warm run skips all tasks" `Quick
          test_warm_run_skips_all_tasks;
        Alcotest.test_case "faulted runs not cached" `Quick
          test_faulted_runs_never_cached;
        Alcotest.test_case "disk cache across engines" `Quick
          test_engine_disk_cache_across_instances;
        Alcotest.test_case "parallel byte-identical" `Slow
          test_parallel_byte_identical;
        Alcotest.test_case "parallel isolation" `Quick
          test_parallel_isolation_matches_sequential;
        QCheck_alcotest.to_alcotest prop_cache_roundtrip;
        Alcotest.test_case "metrics accumulation" `Quick
          test_metrics_accumulation;
        Alcotest.test_case "engine charges stages" `Quick
          test_engine_charges_stages;
        Alcotest.test_case "inflight single caller" `Quick
          test_inflight_single_caller;
        Alcotest.test_case "inflight exception" `Quick
          test_inflight_exception_propagates;
        Alcotest.test_case "inflight coalesces" `Quick
          test_inflight_coalesces_across_domains;
      ] );
  ]
