(* Corpus generator + runner: the determinism contract extended to the
   generated population.  Same spec must mean byte-identical sources and
   byte-identical analysis artifacts at any job count, and every
   generated program must compile and run trap-free. *)

module Gen = Asipfb_corpus.Gen
module Corpus = Asipfb_corpus.Corpus
module Engine = Asipfb_engine.Engine

let test_source_deterministic () =
  for index = 0 to 19 do
    let a = Gen.source ~seed:42 ~index () in
    let b = Gen.source ~seed:42 ~index () in
    Alcotest.(check string)
      (Printf.sprintf "program %d byte-identical across calls" index)
      a b
  done;
  Alcotest.(check bool) "different index differs" true
    (Gen.source ~seed:42 ~index:0 () <> Gen.source ~seed:42 ~index:1 ());
  Alcotest.(check bool) "different seed differs" true
    (Gen.source ~seed:42 ~index:0 () <> Gen.source ~seed:43 ~index:0 ())

let test_names_unique () =
  let names =
    List.init 200 (fun index -> Gen.name ~seed:7 ~index)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check int) "200 distinct names" 200 (List.length names)

let test_programs_trap_free () =
  (* The grammar's safety claim: every program compiles and runs without
     traps, so corpus failures always indicate a pipeline bug. *)
  List.iter
    (fun (b : Asipfb_bench_suite.Benchmark.t) ->
      let a = Asipfb.Pipeline.analyze b in
      Alcotest.(check bool)
        (b.name ^ " executed instructions")
        true
        (a.outcome.instrs_executed > 0))
    (Corpus.benchmarks (Corpus.spec ~seed:99 ~count:25 ()))

(* One outcome, reduced to a comparable artifact fingerprint. *)
let fingerprint (o : Corpus.outcome) =
  match o.result with
  | Error _ -> (o.benchmark.name, -1, -1, [])
  | Ok (a, ds) ->
      ( o.benchmark.name,
        a.outcome.instrs_executed,
        List.length a.verify,
        List.map
          (fun (d : Asipfb_chain.Detect.detected) ->
            (Asipfb_chain.Detect.display_name d, d.freq))
          ds )

let run_fingerprints ~jobs spec =
  let stream = ref [] in
  let engine = Engine.create ~jobs ~cache:false () in
  let summary =
    Corpus.run_spec ~engine ~verify:`Full
      ~on_result:(fun o -> stream := fingerprint o :: !stream)
      spec
  in
  (summary, List.rev !stream)

let test_jobs_artifact_equality () =
  (* Same spec at -j 1 and -j 4: identical summary, identical rendered
     text, identical per-program artifact stream in index order. *)
  let spec = Corpus.spec ~seed:42 ~count:30 () in
  let s1, f1 = run_fingerprints ~jobs:1 spec in
  let s4, f4 = run_fingerprints ~jobs:4 spec in
  Alcotest.(check bool) "summaries equal" true (s1 = s4);
  Alcotest.(check string) "rendered summaries byte-identical"
    (Corpus.render_summary spec s1)
    (Corpus.render_summary spec s4);
  Alcotest.(check bool) "artifact streams equal" true (f1 = f4);
  Alcotest.(check int) "all ok" 30 s1.ok;
  Alcotest.(check int) "none crashed" 0
    (s1.crashed + s1.timeouts + s1.quarantined)

let test_streaming_order_and_counts () =
  (* A batch far smaller than the corpus: on_result must still arrive
     once per program, in index order, and the counters must add up. *)
  let spec = Corpus.spec ~seed:5 ~count:17 () in
  let seen = ref [] in
  let summary =
    Corpus.run_spec
      ~engine:(Engine.sequential ())
      ~batch:4
      ~on_result:(fun o -> seen := o.benchmark.name :: !seen)
      spec
  in
  let expected = List.init 17 (fun index -> Gen.name ~seed:5 ~index) in
  Alcotest.(check (list string)) "stream in index order" expected
    (List.rev !seen);
  Alcotest.(check int) "total" 17 summary.total;
  Alcotest.(check int) "counters partition the total" 17
    (summary.ok + summary.crashed + summary.timeouts + summary.quarantined)

let test_chain_histogram_shape () =
  let summary =
    Corpus.run_spec
      ~engine:(Engine.sequential ())
      (Corpus.spec ~seed:42 ~count:20 ())
  in
  Alcotest.(check bool) "has chains" true (summary.chains <> []);
  Alcotest.(check bool) "dynamic ops positive" true (summary.dynamic_ops > 0);
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "histogram sorted descending" true
    (sorted summary.chains);
  List.iter
    (fun (name, pct) ->
      Alcotest.(check bool)
        (name ^ " share within [0, 100]")
        true
        (pct >= 0.0 && pct <= 100.0))
    summary.chains

let test_spec_validation () =
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Corpus.spec: negative count") (fun () ->
      ignore (Corpus.spec ~seed:1 ~count:(-1) ()));
  let s = Corpus.spec ~seed:1 ~count:1 ~size:0 () in
  Alcotest.(check int) "size clamped to 3" 3 s.size

let suite =
  [
    ( "corpus",
      [
        Alcotest.test_case "sources deterministic" `Quick
          test_source_deterministic;
        Alcotest.test_case "names unique" `Quick test_names_unique;
        Alcotest.test_case "programs trap-free" `Slow
          test_programs_trap_free;
        Alcotest.test_case "-j1/-j4 artifacts equal" `Slow
          test_jobs_artifact_equality;
        Alcotest.test_case "streaming order" `Quick
          test_streaming_order_and_counts;
        Alcotest.test_case "histogram shape" `Quick
          test_chain_histogram_shape;
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
      ] );
  ]
