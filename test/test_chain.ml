(* Tests for the core contribution: chain classification, the
   branch-and-bound sequence detector, coverage, and combination. *)

module Types = Asipfb_ir.Types
module Instr = Asipfb_ir.Instr
module Builder = Asipfb_ir.Builder
module Lower = Asipfb_frontend.Lower
module Interp = Asipfb_sim.Interp
module Schedule = Asipfb_sched.Schedule
module Opt_level = Asipfb_sched.Opt_level
module Chainop = Asipfb_chain.Chainop
module Detect = Asipfb_chain.Detect
module Coverage = Asipfb_chain.Coverage
module Combine = Asipfb_chain.Combine

(* --- classification ------------------------------------------------------ *)

let test_class_of () =
  let b = Builder.create () in
  let reg name ty = Builder.fresh_reg b ~ty ~name in
  let x = reg "x" Types.Int and f = reg "f" Types.Float in
  let cls i = Chainop.class_of i in
  Alcotest.(check (option string)) "add" (Some "add")
    (cls (Builder.binop b Types.Add x (Instr.Imm_int 1) (Instr.Imm_int 2)));
  Alcotest.(check (option string)) "fmul" (Some "fmultiply")
    (cls (Builder.binop b Types.Fmul f (Instr.Imm_float 1.) (Instr.Imm_float 2.)));
  Alcotest.(check (option string)) "shift" (Some "shift")
    (cls (Builder.binop b Types.Shr x (Instr.Reg x) (Instr.Imm_int 1)));
  Alcotest.(check (option string)) "compare" (Some "compare")
    (cls (Builder.cmp b Types.Int Types.Lt x (Instr.Reg x) (Instr.Imm_int 9)));
  Alcotest.(check (option string)) "fcompare" (Some "fcompare")
    (cls (Builder.cmp b Types.Float Types.Lt x (Instr.Reg f) (Instr.Reg f)));
  Alcotest.(check (option string)) "load" (Some "load")
    (cls (Builder.load b Types.Int x "m" (Instr.Imm_int 0)));
  Alcotest.(check (option string)) "fstore" (Some "fstore")
    (cls (Builder.store b Types.Float "m" (Instr.Imm_int 0) (Instr.Reg f)));
  Alcotest.(check (option string)) "mov not chainable" None
    (cls (Builder.mov b x (Instr.Imm_int 1)));
  Alcotest.(check (option string)) "conversion not chainable" None
    (cls (Builder.unop b Types.Int_to_float f (Instr.Reg x)));
  Alcotest.(check (option string)) "sin not chainable" None
    (cls (Builder.unop b Types.Sin f (Instr.Reg f)));
  Alcotest.(check (option string)) "call not chainable" None
    (cls (Builder.call b None "g" []));
  Alcotest.(check bool) "store is terminal" true
    (Chainop.terminal_only
       (Builder.store b Types.Int "m" (Instr.Imm_int 0) (Instr.Imm_int 1)));
  Alcotest.(check bool) "add is not terminal" false
    (Chainop.terminal_only
       (Builder.binop b Types.Add x (Instr.Imm_int 1) (Instr.Imm_int 2)))

let test_family () =
  Alcotest.(check string) "fmultiply family" "multiply"
    (Chainop.family "fmultiply");
  Alcotest.(check string) "fload family" "load" (Chainop.family "fload");
  Alcotest.(check string) "add family" "add" (Chainop.family "add");
  let base_classes =
    [ "add"; "subtract"; "multiply"; "divide"; "logic"; "shift"; "compare";
      "load"; "store" ]
  in
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (Printf.sprintf "family of %s is a base class" cls)
        true
        (List.mem (Chainop.family cls) base_classes))
    Chainop.all_classes;
  Alcotest.(check string) "sequence name" "multiply-add"
    (Chainop.sequence_name [ "multiply"; "add" ])

(* --- detection ----------------------------------------------------------- *)

let analyze ?(level = Opt_level.O1) src =
  let p = Lower.compile src ~entry:"main" in
  let profile = (Interp.run p).profile in
  (Schedule.optimize ~level p, profile)

let detect ?(level = Opt_level.O1) ?(length = 2) ?(min_freq = 0.5) src =
  let sched, profile = analyze ~level src in
  Detect.run
    { (Detect.default_config ~length) with min_freq }
    sched ~profile

let names ds = List.map Detect.display_name ds

let mac_src =
  {|
float x[32];
float y[32];
void main() {
  int i;
  float s = 0.0;
  for (i = 0; i < 32; i++) {
    x[i] = 1.0;
    y[i] = 2.0;
  }
  for (i = 0; i < 32; i++) {
    s = s + x[i] * y[i];
  }
  x[0] = s;
}
|}

let test_detects_mac_at_o0 () =
  let ds = detect ~level:Opt_level.O0 mac_src in
  Alcotest.(check bool) "fmultiply-fadd found" true
    (List.mem "fmultiply-fadd" (names ds));
  Alcotest.(check bool) "fload-fmultiply found" true
    (List.mem "fload-fmultiply" (names ds))

let test_o1_exposes_cross_iteration () =
  let ds0 = detect ~level:Opt_level.O0 mac_src in
  let ds1 = detect ~level:Opt_level.O1 mac_src in
  (* The loop-index add feeding next iteration's compare only appears once
     pipelining follows the back edge. *)
  Alcotest.(check bool) "add-compare absent at O0" false
    (List.mem "add-compare" (names ds0));
  Alcotest.(check bool) "add-compare present at O1" true
    (List.mem "add-compare" (names ds1));
  Alcotest.(check bool) "accumulation fadd-fadd at O1" true
    (List.mem "fadd-fadd" (names ds1));
  Alcotest.(check bool) "O1 finds at least as many" true
    (List.length ds1 >= List.length ds0)

let test_o2_renaming_breaks_index_chains () =
  let ds1 = detect ~level:Opt_level.O1 mac_src in
  let ds2 = detect ~level:Opt_level.O2 mac_src in
  Alcotest.(check bool) "add-compare at O1" true
    (List.mem "add-compare" (names ds1));
  Alcotest.(check bool) "add-compare gone at O2 (renamed index)" false
    (List.mem "add-compare" (names ds2));
  (* The unrenamed accumulator still chains. *)
  Alcotest.(check bool) "fadd-fadd survives O2" true
    (List.mem "fadd-fadd" (names ds2))

let test_frequencies_bounded () =
  List.iter
    (fun level ->
      List.iter
        (fun length ->
          let sched, profile = analyze ~level mac_src in
          let ds =
            Detect.run (Detect.default_config ~length) sched ~profile
          in
          List.iter
            (fun (d : Detect.detected) ->
              Alcotest.(check bool)
                (Printf.sprintf "0 <= %s <= 100" (Detect.display_name d))
                true
                (d.freq >= 0.0 && d.freq <= 100.0))
            ds)
        [ 2; 3; 4; 5 ])
    Opt_level.all

let test_sorted_by_freq () =
  let ds = detect ~level:Opt_level.O1 mac_src in
  let freqs = List.map (fun (d : Detect.detected) -> d.freq) ds in
  Alcotest.(check bool) "descending" true
    (freqs = List.sort (fun a b -> Float.compare b a) freqs)

let test_min_freq_filters () =
  let all = detect ~min_freq:0.0001 mac_src in
  let some = detect ~min_freq:20.0 mac_src in
  Alcotest.(check bool) "higher threshold, fewer results" true
    (List.length some <= List.length all);
  List.iter
    (fun (d : Detect.detected) ->
      Alcotest.(check bool) "above threshold" true (d.freq >= 20.0))
    some

let test_store_only_terminal () =
  List.iter
    (fun length ->
      let ds = detect ~length mac_src in
      List.iter
        (fun (d : Detect.detected) ->
          List.iteri
            (fun idx cls ->
              if idx < length - 1 then
                Alcotest.(check bool)
                  (Printf.sprintf "%s: store only last"
                     (Detect.display_name d))
                  true
                  (cls <> "store" && cls <> "fstore"))
            d.classes)
        ds)
    [ 2; 3 ]

let test_banned_ops_excluded () =
  let sched, profile = analyze mac_src in
  let ds = Detect.run (Detect.default_config ~length:2) sched ~profile in
  let all_opids =
    List.concat_map
      (fun (d : Detect.detected) ->
        List.concat_map
          (fun (o : Detect.occurrence) -> List.map fst o.opids)
          d.occurrences)
      ds
    |> List.sort_uniq Int.compare
  in
  let banned = all_opids in
  let ds' =
    Detect.run
      { (Detect.default_config ~length:2) with banned }
      sched ~profile
  in
  Alcotest.(check int) "banning every member finds nothing" 0
    (List.length ds')

let test_length_bounds () =
  let sched, profile = analyze mac_src in
  match Detect.run (Detect.default_config ~length:1) sched ~profile with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length 1 must be rejected"

let test_occurrence_counts_positive () =
  let ds = detect mac_src in
  List.iter
    (fun (d : Detect.detected) ->
      List.iter
        (fun (o : Detect.occurrence) ->
          Alcotest.(check bool) "positive count" true (o.count > 0))
        d.occurrences)
    ds

(* --- coverage ------------------------------------------------------------ *)

let coverage_of ?(level = Opt_level.O1) src =
  let sched, profile = analyze ~level src in
  Coverage.analyze Coverage.default_config sched ~profile

let test_coverage_basics () =
  let r = coverage_of mac_src in
  Alcotest.(check bool) "some picks" true (r.picks <> []);
  Alcotest.(check bool) "coverage positive" true (r.coverage > 0.0);
  Alcotest.(check bool) "coverage bounded" true (r.coverage <= 100.0);
  Alcotest.(check (float 1e-6)) "coverage = sum of picks" r.coverage
    (Asipfb_util.Listx.sum_by (fun (p : Coverage.pick) -> p.pick_freq) r.picks);
  List.iter
    (fun (p : Coverage.pick) ->
      Alcotest.(check bool) "pick above stop threshold" true
        (p.pick_freq >= Coverage.default_config.stop_below))
    r.picks

let test_coverage_respects_max_picks () =
  let sched, profile = analyze mac_src in
  let r =
    Coverage.analyze
      { Coverage.default_config with max_picks = 1 }
      sched ~profile
  in
  Alcotest.(check bool) "at most one pick" true (List.length r.picks <= 1)

let test_coverage_opt_beats_none_on_suite () =
  (* On the paper's detailed benchmarks, optimization should raise (or at
     worst roughly match) the achievable coverage. *)
  let wins =
    List.filter
      (fun name ->
        let b = Asipfb_bench_suite.Registry.find name in
        let a = Asipfb.Pipeline.analyze b in
        let c0 = (Asipfb.Pipeline.coverage a (Asipfb.Pipeline.Query.make Opt_level.O0)).coverage in
        let c1 = (Asipfb.Pipeline.coverage a (Asipfb.Pipeline.Query.make Opt_level.O1)).coverage in
        c1 >= c0 -. 5.0)
      [ "sewha"; "feowf"; "bspline"; "iir" ]
  in
  Alcotest.(check int) "optimization competitive on all four" 4
    (List.length wins)

(* --- combination ---------------------------------------------------------- *)

let fake name freq : Detect.detected =
  { classes = [ name; "add" ]; freq; occurrences = [] }

let test_equal_weight () =
  let entries =
    Combine.equal_weight
      [ ("b1", [ fake "multiply" 10.0 ]);
        ("b2", [ fake "multiply" 20.0 ]);
        ("b3", []) ]
  in
  match Combine.find entries [ "multiply"; "add" ] with
  | Some e ->
      Alcotest.(check (float 1e-9)) "mean over all three" 10.0
        e.combined_freq;
      Alcotest.(check int) "two contributors" 2
        (List.length e.per_benchmark)
  | None -> Alcotest.fail "entry missing"

let test_weighted () =
  let entries =
    Combine.weighted
      [ ("b1", 100, [ fake "multiply" 10.0 ]);
        ("b2", 300, [ fake "multiply" 20.0 ]) ]
  in
  match Combine.find entries [ "multiply"; "add" ] with
  | Some e ->
      Alcotest.(check (float 1e-9)) "weighted mean" 17.5 e.combined_freq
  | None -> Alcotest.fail "entry missing"

let test_merge_families () =
  let ds =
    [ { Detect.classes = [ "fmultiply"; "fadd" ]; freq = 5.0; occurrences = [] };
      { Detect.classes = [ "multiply"; "add" ]; freq = 3.0; occurrences = [] };
      { Detect.classes = [ "add"; "add" ]; freq = 1.0; occurrences = [] } ]
  in
  let merged = Combine.merge_families ds in
  Alcotest.(check int) "two groups" 2 (List.length merged);
  match merged with
  | first :: _ ->
      Alcotest.(check (list string)) "families merged"
        [ "multiply"; "add" ] first.classes;
      Alcotest.(check (float 1e-9)) "frequencies add" 8.0 first.freq
  | [] -> Alcotest.fail "empty"

let test_combine_sorted () =
  let entries =
    Combine.equal_weight
      [ ("b1", [ fake "multiply" 1.0; { (fake "shift" 30.0) with classes = [ "shift"; "add" ] } ]) ]
  in
  match entries with
  | a :: b :: _ ->
      Alcotest.(check bool) "descending" true
        (a.combined_freq >= b.combined_freq)
  | _ -> Alcotest.fail "expected two entries"

let suite =
  [
    ( "chain.chainop",
      [
        Alcotest.test_case "classification" `Quick test_class_of;
        Alcotest.test_case "families" `Quick test_family;
      ] );
    ( "chain.detect",
      [
        Alcotest.test_case "MAC at O0" `Quick test_detects_mac_at_o0;
        Alcotest.test_case "O1 exposes cross-iteration" `Quick
          test_o1_exposes_cross_iteration;
        Alcotest.test_case "O2 renaming breaks index chains" `Quick
          test_o2_renaming_breaks_index_chains;
        Alcotest.test_case "frequencies bounded" `Quick
          test_frequencies_bounded;
        Alcotest.test_case "sorted by frequency" `Quick test_sorted_by_freq;
        Alcotest.test_case "min_freq filters" `Quick test_min_freq_filters;
        Alcotest.test_case "stores only terminal" `Quick
          test_store_only_terminal;
        Alcotest.test_case "banned ops excluded" `Quick
          test_banned_ops_excluded;
        Alcotest.test_case "length bounds" `Quick test_length_bounds;
        Alcotest.test_case "occurrence counts positive" `Quick
          test_occurrence_counts_positive;
      ] );
    ( "chain.coverage",
      [
        Alcotest.test_case "basics" `Quick test_coverage_basics;
        Alcotest.test_case "max picks" `Quick test_coverage_respects_max_picks;
        Alcotest.test_case "optimization competitive" `Slow
          test_coverage_opt_beats_none_on_suite;
      ] );
    ( "chain.combine",
      [
        Alcotest.test_case "equal weight" `Quick test_equal_weight;
        Alcotest.test_case "weighted" `Quick test_weighted;
        Alcotest.test_case "merge families" `Quick test_merge_families;
        Alcotest.test_case "sorted" `Quick test_combine_sorted;
      ] );
  ]
